"""Monte-Carlo simulation of an asynchronously dividing cell population.

The simulator advances an initial cohort of cells (Sec. 2.1 of the paper)
through repeated rounds of division up to a final experiment time.  Division
is asymmetric: when a cell reaches phase one it is replaced by a swarmer
daughter starting at phase zero and a stalked daughter starting at its own,
freshly drawn, transition phase (the stalked cell skips the swarmer stage).
Both daughters receive independent cycle times and transition phases.

The simulation is generation-vectorised: each round processes every cell that
divides before the horizon in one NumPy pass, so populations of tens of
thousands of cells over a couple of cell cycles are simulated in well under a
second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cellcycle.parameters import CellCycleParameters
from repro.cellcycle.phase import InitialCondition, draw_cohort
from repro.cellcycle.volume import SmoothVolumeModel, VolumeModel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, ensure_1d


@dataclass
class PopulationSnapshot:
    """State of all live cells at a single experiment time.

    Attributes
    ----------
    time:
        Snapshot time in minutes.
    phases:
        Cell-cycle phase of every live cell.
    transition_phases:
        Per-cell swarmer-to-stalked transition phase.
    volumes:
        Per-cell volume under the simulator's volume model.
    cycle_times:
        Per-cell total cycle time in minutes.
    """

    time: float
    phases: np.ndarray
    transition_phases: np.ndarray
    volumes: np.ndarray
    cycle_times: np.ndarray

    @property
    def num_cells(self) -> int:
        """Number of live cells in the snapshot."""
        return int(self.phases.size)

    @property
    def total_volume(self) -> float:
        """Total population volume."""
        return float(np.sum(self.volumes))


@dataclass
class PopulationHistory:
    """Flat record of every cell ever created during a simulation.

    Cells are stored structure-of-arrays style.  A cell is alive at time ``t``
    when ``birth_time <= t < division_time``; cells whose division falls after
    the simulation horizon have ``division_time`` set to the actual division
    time anyway (it is simply never reached within the experiment).
    """

    birth_times: np.ndarray
    initial_phases: np.ndarray
    cycle_times: np.ndarray
    transition_phases: np.ndarray
    division_times: np.ndarray
    generations: np.ndarray
    # One-slot memo of the last phases_at_many result, keyed by the snapshot
    # times.  Kernel builders evaluate the same history on the same
    # measurement grid repeatedly (volume-model ablations, benchmark
    # repeats); the (time, cell) pair expansion is by far the most expensive
    # part and is identical across those calls.
    _pairs_key: bytes | None = field(default=None, init=False, repr=False, compare=False)
    _pairs_value: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_cells(self) -> int:
        """Total number of cells ever created (live plus divided)."""
        return int(self.birth_times.size)

    def alive_mask(self, time: float) -> np.ndarray:
        """Boolean mask of cells alive at ``time``."""
        return (self.birth_times <= time) & (time < self.division_times)

    def phases_at(self, time: float) -> tuple[np.ndarray, np.ndarray]:
        """Phases and indices of cells alive at ``time``."""
        mask = self.alive_mask(time)
        indices = np.flatnonzero(mask)
        elapsed = time - self.birth_times[indices]
        phases = self.initial_phases[indices] + elapsed / self.cycle_times[indices]
        return np.clip(phases, 0.0, 1.0), indices

    def alive_spans(self, sorted_times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-cell index range of ``sorted_times`` during which each cell lives.

        Cell ``c`` is alive at ``sorted_times[lo[c]:hi[c]]`` (its
        ``[birth_time, division_time)`` interval located in the sorted time
        grid with two ``searchsorted`` passes).
        """
        lo = np.searchsorted(sorted_times, self.birth_times, side="left")
        hi = np.searchsorted(sorted_times, self.division_times, side="left")
        return lo, np.maximum(hi, lo)

    def phases_at_many(
        self, sorted_times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live (time, cell) pairs and phases for all ``sorted_times`` in one pass.

        Replaces a per-time full-history ``alive_mask`` sweep with interval
        sorting plus ``searchsorted``: cost is ``O(num_cells log Nm)`` plus
        the number of live pairs, independent of how many snapshot times
        share the history.  The most recent result is memoised per snapshot
        grid (the returned arrays are marked read-only), so repeated kernel
        builds over one history — volume-model ablations, benchmark repeats —
        skip the pair expansion entirely.

        Parameters
        ----------
        sorted_times:
            Snapshot times in ascending order.

        Returns
        -------
        tuple
            ``(time_idx, cell_idx, phases)`` arrays, one entry per live
            (time, cell) pair, ordered by cell then time; the phase values
            match :meth:`phases_at` exactly.
        """
        sorted_times = np.asarray(sorted_times, dtype=float)
        key = sorted_times.tobytes()
        if self._pairs_key == key:
            return self._pairs_value
        lo, hi = self.alive_spans(sorted_times)
        counts = hi - lo
        total = int(counts.sum())
        cell_idx = np.repeat(np.arange(self.num_cells), counts)
        starts = np.cumsum(counts) - counts
        # Concatenated ranges lo[c]:hi[c] via one offset repeat over a single
        # global arange.
        time_idx = np.arange(total) + np.repeat(lo - starts, counts)
        elapsed = sorted_times[time_idx] - self.birth_times[cell_idx]
        phases = self.initial_phases[cell_idx] + elapsed / self.cycle_times[cell_idx]
        np.clip(phases, 0.0, 1.0, out=phases)
        # The memoised arrays are handed out to every caller; freeze them so
        # an accidental in-place edit cannot corrupt later builds.
        for array in (time_idx, cell_idx, phases):
            array.flags.writeable = False
        self._pairs_key = key
        self._pairs_value = (time_idx, cell_idx, phases)
        return self._pairs_value


class PopulationSimulator:
    """Simulate an asynchronously dividing Caulobacter population.

    Parameters
    ----------
    parameters:
        Cell-cycle parameter set (transition phase, cycle-time distribution).
    volume_model:
        Volume model used to convert phases to cell volumes in snapshots;
        defaults to the paper's smooth model.
    initial_condition:
        Initial synchrony model of the culture.
    """

    def __init__(
        self,
        parameters: CellCycleParameters | None = None,
        volume_model: VolumeModel | None = None,
        initial_condition: InitialCondition = InitialCondition.SYNCHRONIZED_SWARMER,
    ) -> None:
        self.parameters = parameters if parameters is not None else CellCycleParameters()
        self.volume_model = volume_model if volume_model is not None else SmoothVolumeModel()
        self.initial_condition = initial_condition

    def run(
        self,
        num_cells: int,
        t_end: float,
        rng: SeedLike = None,
    ) -> PopulationHistory:
        """Simulate ``num_cells`` founder cells up to ``t_end`` minutes.

        Returns a :class:`PopulationHistory` containing every founder and
        every daughter created before the horizon.
        """
        num_cells = int(num_cells)
        if num_cells < 1:
            raise ValueError(f"num_cells must be >= 1, got {num_cells}")
        t_end = check_positive(t_end, "t_end")
        generator = as_generator(rng)

        initial_phases, cycle_times, transition_phases = draw_cohort(
            self.parameters, num_cells, self.initial_condition, generator
        )
        birth_times = np.zeros(num_cells)
        generations = np.zeros(num_cells, dtype=int)

        all_birth = [birth_times]
        all_phase0 = [initial_phases]
        all_cycle = [cycle_times]
        all_sst = [transition_phases]
        all_generation = [generations]
        all_division = [birth_times + cycle_times * (1.0 - initial_phases)]

        # Process divisions generation by generation until none fall before t_end.
        current_division = all_division[0]
        current_generation = generations
        frontier = np.flatnonzero(current_division <= t_end)
        frontier_division = current_division[frontier]
        frontier_generation = current_generation[frontier]

        max_rounds = 64
        for _ in range(max_rounds):
            if frontier.size == 0:
                break
            num_dividing = frontier.size
            # Swarmer daughters: phase 0; stalked daughters: their own phi_sst.
            sw_sst = self.parameters.sample_transition_phase(num_dividing, generator)
            sw_cycle = self.parameters.sample_cycle_time(num_dividing, generator)
            st_sst = self.parameters.sample_transition_phase(num_dividing, generator)
            st_cycle = self.parameters.sample_cycle_time(num_dividing, generator)

            child_birth = np.concatenate([frontier_division, frontier_division])
            child_phase0 = np.concatenate([np.zeros(num_dividing), st_sst])
            child_cycle = np.concatenate([sw_cycle, st_cycle])
            child_sst = np.concatenate([sw_sst, st_sst])
            child_generation = np.concatenate([frontier_generation + 1, frontier_generation + 1])
            child_division = child_birth + child_cycle * (1.0 - child_phase0)

            all_birth.append(child_birth)
            all_phase0.append(child_phase0)
            all_cycle.append(child_cycle)
            all_sst.append(child_sst)
            all_generation.append(child_generation)
            all_division.append(child_division)

            next_mask = child_division <= t_end
            frontier = np.flatnonzero(next_mask)
            frontier_division = child_division[next_mask]
            frontier_generation = child_generation[next_mask]
        else:
            raise RuntimeError(
                "population simulation exceeded the maximum number of division rounds; "
                "check that cycle times are not much shorter than the horizon"
            )

        return PopulationHistory(
            birth_times=np.concatenate(all_birth),
            initial_phases=np.concatenate(all_phase0),
            cycle_times=np.concatenate(all_cycle),
            transition_phases=np.concatenate(all_sst),
            division_times=np.concatenate(all_division),
            generations=np.concatenate(all_generation),
        )

    def snapshot(self, history: PopulationHistory, time: float) -> PopulationSnapshot:
        """Extract the live-cell state at ``time`` from a simulated history."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        phases, indices = history.phases_at(time)
        transition_phases = history.transition_phases[indices]
        volumes = self.volume_model.volume(phases, transition_phases)
        return PopulationSnapshot(
            time=float(time),
            phases=phases,
            transition_phases=transition_phases,
            volumes=np.asarray(volumes, dtype=float),
            cycle_times=history.cycle_times[indices],
        )

    def snapshots(self, history: PopulationHistory, times: np.ndarray) -> list[PopulationSnapshot]:
        """Snapshots at each of the given times."""
        times = ensure_1d(times, "times")
        return [self.snapshot(history, float(t)) for t in times]
