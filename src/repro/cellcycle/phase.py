"""Phase evolution of individual cells and initial-synchrony models.

A cell's phase advances linearly in time at a rate ``1 / T_k`` (Sec. 2.1):
``phi_k(t) = phi_k(0) + t / T_k`` until the phase reaches one, at which point
the cell divides into a swarmer daughter (phase 0) and a stalked daughter
(phase equal to its own transition phase).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.cellcycle.parameters import CellCycleParameters
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d


class InitialCondition(enum.Enum):
    """Initial synchrony model of the simulated culture.

    ``SYNCHRONIZED_SWARMER``
        The standard batch-culture protocol: every cell starts as a swarmer
        with a phase drawn uniformly between zero and its own transition
        phase (the paper's "each cell can be found with phi_k(0) <= phi_sst_k").
    ``ALL_AT_ZERO``
        A perfectly synchronised culture with every cell at phase zero.
    ``ASYNCHRONOUS``
        A fully asynchronous culture with phases uniform on ``[0, 1)``.
    """

    SYNCHRONIZED_SWARMER = "synchronized_swarmer"
    ALL_AT_ZERO = "all_at_zero"
    ASYNCHRONOUS = "asynchronous"


def sample_initial_phases(
    transition_phases: np.ndarray,
    condition: InitialCondition = InitialCondition.SYNCHRONIZED_SWARMER,
    rng: SeedLike = None,
) -> np.ndarray:
    """Sample initial phases for cells with the given transition phases.

    Parameters
    ----------
    transition_phases:
        Per-cell transition phases ``phi_sst_k``.
    condition:
        Initial synchrony model.
    rng:
        Seed or generator.
    """
    transition_phases = ensure_1d(transition_phases, "transition_phases")
    generator = as_generator(rng)
    if condition is InitialCondition.ALL_AT_ZERO:
        return np.zeros_like(transition_phases)
    if condition is InitialCondition.SYNCHRONIZED_SWARMER:
        return generator.uniform(0.0, transition_phases)
    if condition is InitialCondition.ASYNCHRONOUS:
        return generator.uniform(0.0, 1.0, transition_phases.size)
    raise ValueError(f"unknown initial condition {condition!r}")


def phase_at_time(
    initial_phase: np.ndarray | float,
    cycle_time: np.ndarray | float,
    elapsed: float,
) -> np.ndarray | float:
    """Phase of a cell after ``elapsed`` minutes (uncapped linear advance)."""
    return initial_phase + elapsed / np.asarray(cycle_time, dtype=float)


def time_to_division(
    initial_phase: np.ndarray | float,
    cycle_time: np.ndarray | float,
) -> np.ndarray | float:
    """Time remaining until division, ``T_k (1 - phi_k(0))``."""
    return np.asarray(cycle_time, dtype=float) * (1.0 - np.asarray(initial_phase, dtype=float))


def draw_cohort(
    parameters: CellCycleParameters,
    size: int,
    condition: InitialCondition = InitialCondition.SYNCHRONIZED_SWARMER,
    rng: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw an initial cohort of cells.

    Returns
    -------
    tuple of arrays
        ``(initial_phases, cycle_times, transition_phases)`` each of length
        ``size``.
    """
    generator = as_generator(rng)
    transition_phases = parameters.sample_transition_phase(size, generator)
    cycle_times = parameters.sample_cycle_time(size, generator)
    initial_phases = sample_initial_phases(transition_phases, condition, generator)
    return initial_phases, cycle_times, transition_phases
