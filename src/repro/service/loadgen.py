"""Deterministic, seeded workload generation and chaos scenarios.

Benchmarks and the ``repro serve-bench`` CLI need realistic service traffic:
a mix of measurement grids, synthetic "genes", noise levels, smoothing
settings and *exact repeats* (retried or re-displayed requests that a
content-addressed cache should answer).  :func:`build_workload` produces
such a request list deterministically from a seed, so throughput numbers
are reproducible run to run and every response can be verified bit-for-bit
against the one-at-a-time reference that :func:`serial_reference` computes
with plain :meth:`~repro.core.deconvolver.Deconvolver.fit` calls.

On top of the base generator, :data:`SCENARIOS` defines the chaos scenario
suite the robustness layer is tested under: each :class:`Scenario` reshapes
a built workload (:func:`apply_scenario` — priorities, deadlines, hot-key
shard skew, heavy-tailed request sizes, cache-hostile repeat suppression),
optionally paces its arrival times (:func:`arrival_offsets` — bursty
Poisson-sized waves), names the :class:`~repro.service.faults.FaultSpec` to
arm under ``--faults``, and carries the :class:`SLOTarget` its telemetry
snapshot is judged against (:func:`evaluate_slo`).  Scenario stamping draws
from its own seeded stream, so the *base* workload stays byte-identical to
the plain generator run to run — the bit-exactness reference never moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.data.synthetic import single_pulse_profile
from repro.service.faults import FaultSpec
from repro.service.scheduler import DEFAULT_CONFIG_KEY, FitRequest

__all__ = [
    "SCENARIOS",
    "SLOTarget",
    "Scenario",
    "WorkloadSpec",
    "apply_scenario",
    "arrival_offsets",
    "build_workload",
    "evaluate_slo",
    "max_coefficient_gap",
    "serial_reference",
    "warm_serial_reference",
]

#: Lambda candidate grid stamped on heavy-tail selection requests: wide and
#: dense enough that one heavy request costs tens of solve passes.
HEAVY_LAMBDA_GRID = np.logspace(-6.0, 1.0, 48)


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a generated service workload.

    Attributes
    ----------
    num_requests:
        Total number of requests generated.
    repeat_ratio:
        Probability that a request is a bit-exact repeat of an earlier one
        (fresh array copies, so only content addressing can recognise it).
    selection_fraction:
        Fraction of fresh requests that ask for automatic lambda selection
        (``lam=None``) instead of a fixed smoothing parameter.
    noise_levels:
        Measurement noise scales mixed uniformly across fresh requests.
    lambdas:
        Fixed smoothing parameters mixed across non-selection requests.
    species_variety:
        Number of distinct synthetic truth profiles ("genes") in the mix.
    seed:
        Seed of the generator; the workload is a pure function of the spec
        and the kernel list.
    """

    num_requests: int = 64
    repeat_ratio: float = 0.25
    selection_fraction: float = 0.2
    noise_levels: tuple = (0.005, 0.02)
    lambdas: tuple = (1e-3, 1e-2)
    species_variety: int = 6
    seed: int = 0


def build_workload(
    kernels: Sequence,
    spec: WorkloadSpec = WorkloadSpec(),
    *,
    config: Hashable = DEFAULT_CONFIG_KEY,
) -> list[FitRequest]:
    """Generate the seeded request mix for ``kernels``.

    Parameters
    ----------
    kernels:
        Pre-built :class:`~repro.cellcycle.kernel.VolumeKernel` objects, one
        per measurement grid in the mix; requests cycle over them randomly.
    spec:
        Workload shape (see :class:`WorkloadSpec`).
    config:
        Pool shard key stamped on every request.

    Returns
    -------
    list[FitRequest]
        ``spec.num_requests`` requests; repeats carry fresh array copies so
        only a content-addressed cache can recognise them.
    """
    if not kernels:
        raise ValueError("at least one kernel is required")
    rng = np.random.default_rng(spec.seed)
    profiles = [
        single_pulse_profile(
            center=0.15 + 0.7 * rng.random(),
            width=0.10 + 0.08 * rng.random(),
            amplitude=1.0 + rng.random(),
            baseline=0.2,
        )
        for _ in range(max(1, spec.species_variety))
    ]
    requests: list[FitRequest] = []
    fresh: list[FitRequest] = []
    for _ in range(spec.num_requests):
        if fresh and rng.random() < spec.repeat_ratio:
            base = fresh[int(rng.integers(len(fresh)))]
            requests.append(
                FitRequest(
                    times=base.times.copy(),
                    measurements=base.measurements.copy(),
                    sigma=base.sigma,
                    lam=base.lam,
                    lambda_method=base.lambda_method,
                    lambda_grid=base.lambda_grid,
                    rng=base.rng,
                    config=base.config,
                )
            )
            continue
        kernel = kernels[int(rng.integers(len(kernels)))]
        profile = profiles[int(rng.integers(len(profiles)))]
        noise = float(spec.noise_levels[int(rng.integers(len(spec.noise_levels)))])
        clean = kernel.apply_function(profile)
        values = clean + noise * rng.normal(size=clean.size)
        lam = None
        if rng.random() >= spec.selection_fraction:
            lam = float(spec.lambdas[int(rng.integers(len(spec.lambdas)))])
        request = FitRequest(
            times=np.asarray(kernel.times, dtype=float).copy(),
            measurements=values,
            lam=lam,
            config=config,
        )
        fresh.append(request)
        requests.append(request)
    return requests


def serial_reference(
    deconvolvers, requests: Sequence[FitRequest]
) -> list:
    """One-request-at-a-time reference: plain ``fit`` calls, no service layer.

    Parameters
    ----------
    deconvolvers:
        Either one :class:`~repro.core.deconvolver.Deconvolver` (serving
        every request) or a mapping from request ``config`` keys to
        deconvolvers.
    requests:
        The workload, fitted in order.

    Returns
    -------
    list[DeconvolutionResult]
        One result per request — the ground truth the scheduler's responses
        are verified against (bit-identical to 1e-10).
    """
    if isinstance(deconvolvers, Mapping):
        resolve = deconvolvers.__getitem__
    else:
        resolve = lambda _key: deconvolvers  # noqa: E731 - tiny adapter
    return [
        resolve(request.config).fit(
            request.times,
            request.measurements,
            sigma=request.sigma,
            lam=request.lam,
            lambda_method=request.lambda_method,
            lambda_grid=request.lambda_grid,
            rng=request.rng,
        )
        for request in requests
    ]


def warm_serial_reference(deconvolvers, requests: Sequence[FitRequest]) -> list:
    """Warm the one-at-a-time path with one representative per batch bucket.

    Benchmarks warm the serial reference before timing it so the measured
    pass pays no cold per-grid assembly the scheduler pass was spared
    either; one request per :meth:`FitRequest.batch_key` covers every grid,
    sigma variant and selection setting in the workload.  Returns the
    warm-up results (usually discarded).
    """
    representatives: dict = {}
    for request in requests:
        representatives.setdefault(request.batch_key(), request)
    return serial_reference(deconvolvers, list(representatives.values()))


def max_coefficient_gap(results, references) -> float:
    """Largest absolute coefficient difference across two result lists."""
    return max(
        float(np.max(np.abs(result.coefficients - reference.coefficients)))
        for result, reference in zip(results, references)
    )


# ----------------------------------------------------------------------
# Chaos scenarios
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SLOTarget:
    """Pass/fail thresholds a scenario's telemetry snapshot is judged against.

    Attributes
    ----------
    p95_latency_ms:
        Ceiling on the p95 submit-to-result latency of completed requests.
    max_shed_rate:
        Ceiling on ``shed / requests`` (admission-control rejections).
    max_deadline_miss_rate:
        Ceiling on ``deadline_missed / requests`` (queued work dropped
        stale).
    max_error_rate:
        Ceiling on ``errors / requests`` — real failures after retries and
        the degraded path have done their work (sheds and deadline misses
        are counted separately; they are the SLO machinery *working*).
    """

    p95_latency_ms: float = 1000.0
    max_shed_rate: float = 0.0
    max_deadline_miss_rate: float = 0.0
    max_error_rate: float = 0.0


@dataclass(frozen=True)
class Scenario:
    """One chaos scenario: a traffic shape plus its fault plan and SLO.

    Attributes
    ----------
    name, description:
        Identity and the one-line summary printed by ``repro serve-bench``.
    deadline_ms, deadline_fraction:
        Stamp ``deadline_ms`` on this fraction of requests (SLO traffic).
    priority_levels:
        Priorities drawn uniformly per request (single level = no reordering).
    heavy_fraction:
        Fraction of distinct request *contents* converted to automatic
        lambda selection over :data:`HEAVY_LAMBDA_GRID` — the heavy tail of
        the size distribution (one such request costs tens of solves).
    num_configs, hot_fraction:
        Shard the traffic over ``num_configs`` pool keys, routing
        ``hot_fraction`` of contents to the hot shard (``shard-0``) and the
        rest uniformly over the others — hot-key skew.
    repeat_ratio:
        Override of :attr:`WorkloadSpec.repeat_ratio` (``0.0`` makes the
        stream cache-hostile); ``None`` keeps the caller's ratio.
    burst_size, burst_pause_ms:
        Arrival pacing for :func:`arrival_offsets`: Poisson-sized waves of
        about ``burst_size`` back-to-back requests separated by
        ``burst_pause_ms`` quiet gaps.  ``burst_size=0`` submits everything
        at once (uniform open-loop load).
    client_window:
        Closed-loop client window: with a positive value the driver keeps at
        most this many submitted-but-unconsumed responses outstanding,
        waiting on the oldest before submitting more — a *slow consumer*.
        Small windows starve the batcher of coalescing opportunities and
        keep response payloads parked (in the process runner: response-ring
        blocks held until the client drains), exercising the backpressure
        path end to end.  ``0`` (default) is a fully open loop.
    faults:
        The :class:`~repro.service.faults.FaultSpec` armed when the caller
        asks for fault injection (all-zero spec = nothing to arm).
    slo:
        The :class:`SLOTarget` this scenario is judged against.
    """

    name: str
    description: str
    deadline_ms: float | None = None
    deadline_fraction: float = 0.0
    priority_levels: tuple = (0,)
    heavy_fraction: float = 0.0
    num_configs: int = 1
    hot_fraction: float = 0.0
    repeat_ratio: float | None = None
    burst_size: int = 0
    burst_pause_ms: float = 0.0
    client_window: int = 0
    faults: FaultSpec = field(default_factory=FaultSpec)
    slo: SLOTarget = field(default_factory=SLOTarget)


#: The chaos scenario suite ``repro serve-bench --scenario`` runs.  Latency
#: and rate ceilings are deliberately loose — they gate regressions in the
#: SLO machinery itself, not machine speed.
SCENARIOS: dict[str, Scenario] = {
    "steady": Scenario(
        name="steady",
        description="uniform open-loop arrivals, no deadlines — the happy-path baseline",
        faults=FaultSpec(solver_error_rate=0.08, slow_solve_rate=0.10),
        slo=SLOTarget(p95_latency_ms=2000.0, max_error_rate=0.02),
    ),
    "bursty": Scenario(
        name="bursty",
        description="Poisson-sized request waves with quiet gaps; everything carries a deadline",
        deadline_ms=500.0,
        deadline_fraction=1.0,
        priority_levels=(0, 1),
        burst_size=16,
        burst_pause_ms=20.0,
        faults=FaultSpec(solver_error_rate=0.08, slow_solve_rate=0.15, slow_solve_ms=4.0),
        slo=SLOTarget(
            p95_latency_ms=1000.0,
            max_shed_rate=0.5,
            max_deadline_miss_rate=0.25,
            max_error_rate=0.02,
        ),
    ),
    "heavy_tail": Scenario(
        name="heavy_tail",
        description="a slice of requests become wide lambda-selection sweeps (heavy-tailed sizes)",
        deadline_ms=2000.0,
        deadline_fraction=0.5,
        priority_levels=(0, 1, 2),
        heavy_fraction=0.2,
        faults=FaultSpec(solver_error_rate=0.05, session_build_error_rate=0.10),
        slo=SLOTarget(
            p95_latency_ms=5000.0,
            max_shed_rate=0.5,
            max_deadline_miss_rate=0.25,
            max_error_rate=0.02,
        ),
    ),
    "hotkey": Scenario(
        name="hotkey",
        description="traffic sharded over 4 configurations with one shard taking ~90%",
        deadline_ms=1000.0,
        deadline_fraction=0.5,
        num_configs=4,
        hot_fraction=0.9,
        faults=FaultSpec(solver_error_rate=0.05, session_build_error_rate=0.15),
        slo=SLOTarget(
            p95_latency_ms=3000.0,
            max_shed_rate=0.5,
            max_deadline_miss_rate=0.25,
            max_error_rate=0.02,
        ),
    ),
    "cache_hostile": Scenario(
        name="cache_hostile",
        description="repeat-free stream plus random cache evictions — correctness without hits",
        repeat_ratio=0.0,
        faults=FaultSpec(cache_eviction_rate=0.5, cache_eviction_count=8),
        slo=SLOTarget(p95_latency_ms=3000.0, max_error_rate=0.02),
    ),
    "slow_consumer": Scenario(
        name="slow_consumer",
        description="windowed closed-loop client drains responses slowly — backpressure end to end",
        priority_levels=(0, 1),
        repeat_ratio=0.0,
        client_window=3,
        faults=FaultSpec(solver_error_rate=0.05, slow_solve_rate=0.10),
        slo=SLOTarget(p95_latency_ms=5000.0, max_error_rate=0.02),
    ),
}


def apply_scenario(
    requests: Sequence[FitRequest], scenario: Scenario, *, seed: int = 0
) -> list[FitRequest]:
    """Stamp a scenario's traffic shape onto a built workload.

    Content-affecting choices (heavy-tail conversion, shard routing) are
    assigned per distinct request *content* — keyed by the pre-scenario
    :meth:`~repro.service.scheduler.FitRequest.fingerprint` — so bit-exact
    repeats in the base workload stay bit-exact repeats after stamping and
    the result cache keeps seeing them.  Scheduling-only hints (priority,
    deadline) vary freely per request.  All draws come from a dedicated
    stream seeded by ``(seed, scenario name)``, leaving the base workload
    byte-identical to the plain generator.

    Parameters
    ----------
    requests:
        The :func:`build_workload` output to reshape.
    scenario:
        The scenario whose shape to apply.
    seed:
        Seed of the stamping stream (independent of the workload seed's
        effect on content).

    Returns
    -------
    list[FitRequest]
        New request objects (the input list is not mutated).
    """
    rng = np.random.default_rng(
        [int(seed)] + [ord(c) for c in scenario.name]
    )
    content: dict[str, tuple] = {}
    stamped: list[FitRequest] = []
    for request in requests:
        key = request.fingerprint()
        assigned = content.get(key)
        if assigned is None:
            heavy = rng.random() < scenario.heavy_fraction
            config: Hashable = request.config
            if scenario.num_configs > 1:
                if scenario.hot_fraction > 0.0 and rng.random() < scenario.hot_fraction:
                    config = "shard-0"
                else:
                    config = f"shard-{1 + int(rng.integers(scenario.num_configs - 1))}"
            assigned = content[key] = (heavy, config)
        heavy, config = assigned
        priority = int(
            scenario.priority_levels[int(rng.integers(len(scenario.priority_levels)))]
        )
        deadline = None
        if scenario.deadline_ms is not None and rng.random() < scenario.deadline_fraction:
            deadline = float(scenario.deadline_ms)
        request = replace(
            request, config=config, priority=priority, deadline_ms=deadline
        )
        if heavy:
            request = replace(
                request,
                lam=None,
                lambda_method="gcv",
                lambda_grid=HEAVY_LAMBDA_GRID,
            )
        stamped.append(request)
    return stamped


def arrival_offsets(
    scenario: Scenario, num_requests: int, *, seed: int = 0
) -> np.ndarray:
    """Submit-time offsets (seconds from the first submit) for a scenario.

    ``burst_size=0`` returns all zeros (open-loop: everything submits at
    once).  Otherwise requests arrive in back-to-back waves whose sizes are
    Poisson-distributed around ``burst_size``, separated by
    ``burst_pause_ms`` quiet gaps — the classic bursty arrival process that
    defeats purely time-windowed batching.  Deterministic in ``seed``.
    """
    offsets = np.zeros(int(num_requests))
    if scenario.burst_size <= 0 or num_requests <= 0:
        return offsets
    rng = np.random.default_rng([int(seed), 1 + len(scenario.name)])
    now = 0.0
    remaining = 1 + int(rng.poisson(scenario.burst_size))
    for index in range(int(num_requests)):
        if remaining == 0:
            now += scenario.burst_pause_ms / 1e3
            remaining = 1 + int(rng.poisson(scenario.burst_size))
        offsets[index] = now
        remaining -= 1
    return offsets


def evaluate_slo(snapshot: Mapping, slo: SLOTarget) -> dict:
    """Judge one telemetry snapshot against an :class:`SLOTarget`.

    Parameters
    ----------
    snapshot:
        A :meth:`~repro.service.telemetry.Telemetry.snapshot` dict.
    slo:
        The thresholds to judge against.

    Returns
    -------
    dict
        ``checks`` maps each criterion to ``(observed, limit, ok)``;
        ``passed`` is the conjunction.
    """
    counters = snapshot.get("counters", {})
    requests = max(1, counters.get("requests", 0))
    latency = snapshot.get("histograms", {}).get("latency_seconds", {})
    p95_ms = float(latency.get("p95", 0.0)) * 1e3
    checks = {
        "p95_latency_ms": (p95_ms, slo.p95_latency_ms, p95_ms <= slo.p95_latency_ms),
        "shed_rate": (
            float(snapshot.get("shed_rate", 0.0)),
            slo.max_shed_rate,
            float(snapshot.get("shed_rate", 0.0)) <= slo.max_shed_rate,
        ),
        "deadline_miss_rate": (
            float(snapshot.get("deadline_miss_rate", 0.0)),
            slo.max_deadline_miss_rate,
            float(snapshot.get("deadline_miss_rate", 0.0))
            <= slo.max_deadline_miss_rate,
        ),
        "error_rate": (
            counters.get("errors", 0) / requests,
            slo.max_error_rate,
            counters.get("errors", 0) / requests <= slo.max_error_rate,
        ),
    }
    return {"checks": checks, "passed": all(ok for _, _, ok in checks.values())}
