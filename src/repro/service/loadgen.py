"""Deterministic, seeded workload generator for the fit service runtime.

Benchmarks and the ``repro serve-bench`` CLI need realistic service traffic:
a mix of measurement grids, synthetic "genes", noise levels, smoothing
settings and *exact repeats* (retried or re-displayed requests that a
content-addressed cache should answer).  :func:`build_workload` produces
such a request list deterministically from a seed, so throughput numbers
are reproducible run to run and every response can be verified bit-for-bit
against the one-at-a-time reference that :func:`serial_reference` computes
with plain :meth:`~repro.core.deconvolver.Deconvolver.fit` calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.data.synthetic import single_pulse_profile
from repro.service.scheduler import DEFAULT_CONFIG_KEY, FitRequest

__all__ = [
    "WorkloadSpec",
    "build_workload",
    "max_coefficient_gap",
    "serial_reference",
    "warm_serial_reference",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a generated service workload.

    Attributes
    ----------
    num_requests:
        Total number of requests generated.
    repeat_ratio:
        Probability that a request is a bit-exact repeat of an earlier one
        (fresh array copies, so only content addressing can recognise it).
    selection_fraction:
        Fraction of fresh requests that ask for automatic lambda selection
        (``lam=None``) instead of a fixed smoothing parameter.
    noise_levels:
        Measurement noise scales mixed uniformly across fresh requests.
    lambdas:
        Fixed smoothing parameters mixed across non-selection requests.
    species_variety:
        Number of distinct synthetic truth profiles ("genes") in the mix.
    seed:
        Seed of the generator; the workload is a pure function of the spec
        and the kernel list.
    """

    num_requests: int = 64
    repeat_ratio: float = 0.25
    selection_fraction: float = 0.2
    noise_levels: tuple = (0.005, 0.02)
    lambdas: tuple = (1e-3, 1e-2)
    species_variety: int = 6
    seed: int = 0


def build_workload(
    kernels: Sequence,
    spec: WorkloadSpec = WorkloadSpec(),
    *,
    config: Hashable = DEFAULT_CONFIG_KEY,
) -> list[FitRequest]:
    """Generate the seeded request mix for ``kernels``.

    Parameters
    ----------
    kernels:
        Pre-built :class:`~repro.cellcycle.kernel.VolumeKernel` objects, one
        per measurement grid in the mix; requests cycle over them randomly.
    spec:
        Workload shape (see :class:`WorkloadSpec`).
    config:
        Pool shard key stamped on every request.

    Returns
    -------
    list[FitRequest]
        ``spec.num_requests`` requests; repeats carry fresh array copies so
        only a content-addressed cache can recognise them.
    """
    if not kernels:
        raise ValueError("at least one kernel is required")
    rng = np.random.default_rng(spec.seed)
    profiles = [
        single_pulse_profile(
            center=0.15 + 0.7 * rng.random(),
            width=0.10 + 0.08 * rng.random(),
            amplitude=1.0 + rng.random(),
            baseline=0.2,
        )
        for _ in range(max(1, spec.species_variety))
    ]
    requests: list[FitRequest] = []
    fresh: list[FitRequest] = []
    for _ in range(spec.num_requests):
        if fresh and rng.random() < spec.repeat_ratio:
            base = fresh[int(rng.integers(len(fresh)))]
            requests.append(
                FitRequest(
                    times=base.times.copy(),
                    measurements=base.measurements.copy(),
                    sigma=base.sigma,
                    lam=base.lam,
                    lambda_method=base.lambda_method,
                    lambda_grid=base.lambda_grid,
                    rng=base.rng,
                    config=base.config,
                )
            )
            continue
        kernel = kernels[int(rng.integers(len(kernels)))]
        profile = profiles[int(rng.integers(len(profiles)))]
        noise = float(spec.noise_levels[int(rng.integers(len(spec.noise_levels)))])
        clean = kernel.apply_function(profile)
        values = clean + noise * rng.normal(size=clean.size)
        lam = None
        if rng.random() >= spec.selection_fraction:
            lam = float(spec.lambdas[int(rng.integers(len(spec.lambdas)))])
        request = FitRequest(
            times=np.asarray(kernel.times, dtype=float).copy(),
            measurements=values,
            lam=lam,
            config=config,
        )
        fresh.append(request)
        requests.append(request)
    return requests


def serial_reference(
    deconvolvers, requests: Sequence[FitRequest]
) -> list:
    """One-request-at-a-time reference: plain ``fit`` calls, no service layer.

    Parameters
    ----------
    deconvolvers:
        Either one :class:`~repro.core.deconvolver.Deconvolver` (serving
        every request) or a mapping from request ``config`` keys to
        deconvolvers.
    requests:
        The workload, fitted in order.

    Returns
    -------
    list[DeconvolutionResult]
        One result per request — the ground truth the scheduler's responses
        are verified against (bit-identical to 1e-10).
    """
    if isinstance(deconvolvers, Mapping):
        resolve = deconvolvers.__getitem__
    else:
        resolve = lambda _key: deconvolvers  # noqa: E731 - tiny adapter
    return [
        resolve(request.config).fit(
            request.times,
            request.measurements,
            sigma=request.sigma,
            lam=request.lam,
            lambda_method=request.lambda_method,
            lambda_grid=request.lambda_grid,
            rng=request.rng,
        )
        for request in requests
    ]


def warm_serial_reference(deconvolvers, requests: Sequence[FitRequest]) -> list:
    """Warm the one-at-a-time path with one representative per batch bucket.

    Benchmarks warm the serial reference before timing it so the measured
    pass pays no cold per-grid assembly the scheduler pass was spared
    either; one request per :meth:`FitRequest.batch_key` covers every grid,
    sigma variant and selection setting in the workload.  Returns the
    warm-up results (usually discarded).
    """
    representatives: dict = {}
    for request in requests:
        representatives.setdefault(request.batch_key(), request)
    return serial_reference(deconvolvers, list(representatives.values()))


def max_coefficient_gap(results, references) -> float:
    """Largest absolute coefficient difference across two result lists."""
    return max(
        float(np.max(np.abs(result.coefficients - reference.coefficients)))
        for result, reference in zip(results, references)
    )
