"""Typed error taxonomy of the fit service runtime.

Every request accepted by the service terminates in exactly one of four
ways: a result, a :class:`RequestShed` (admission control refused to queue
work it could not finish inside the deadline budget), a
:class:`DeadlineExceeded` (the request aged out before its solve started),
or a crash/overflow error naming what failed.  Callers can branch on the
classes — all of them derive from :class:`ServiceError` — instead of
pattern-matching message strings, and no code path is allowed to leave a
future unresolved (the hang-forever bug class this hierarchy was introduced
to kill).
"""

from __future__ import annotations

import queue

__all__ = [
    "DeadlineExceeded",
    "IntakeOverflow",
    "RequestShed",
    "SchedulerCrashed",
    "ServiceError",
    "WorkerCrashed",
]


class ServiceError(RuntimeError):
    """Base class of every typed service-runtime error.

    Attributes
    ----------
    transient:
        ``True`` when retrying the same work may succeed (the
        :class:`~repro.service.robustness.RetryPolicy` default predicate
        keys on this flag).  Class-level default is ``False``.
    """

    transient = False


class RequestShed(ServiceError):
    """Admission control rejected the request before it entered the queue.

    Raised (as a future's exception) when the projected queue wait already
    exceeds the request's ``deadline_ms`` budget: solving it would only
    produce a stale answer while delaying everyone behind it.  Shed requests
    never consume solver time.

    Parameters
    ----------
    projected_wait_ms:
        The scheduler's queue-wait projection at submit time.
    deadline_ms:
        The request's deadline budget.
    """

    def __init__(self, projected_wait_ms: float, deadline_ms: float) -> None:
        super().__init__(
            f"shed at admission: projected queue wait {projected_wait_ms:.2f} ms "
            f"exceeds the {deadline_ms:.2f} ms deadline budget"
        )
        self.projected_wait_ms = float(projected_wait_ms)
        self.deadline_ms = float(deadline_ms)


class DeadlineExceeded(ServiceError):
    """The request aged past its deadline before its solve started.

    Raised (as a future's exception) by the solve path when a queued
    request's deadline has already lapsed by the time its batch reaches the
    solver — the stale work is dropped instead of computed.

    Parameters
    ----------
    waited_ms:
        How long the request sat in the service before being dropped.
    deadline_ms:
        The request's deadline budget.
    """

    def __init__(self, waited_ms: float, deadline_ms: float) -> None:
        super().__init__(
            f"deadline exceeded: waited {waited_ms:.2f} ms "
            f"against a {deadline_ms:.2f} ms budget"
        )
        self.waited_ms = float(waited_ms)
        self.deadline_ms = float(deadline_ms)


class SchedulerCrashed(ServiceError):
    """The batcher (or a runner) died; the service is permanently down.

    Every queued and pending future is failed with this error when the
    batcher thread crashes, and every later :meth:`submit` raises it
    immediately — nothing hangs waiting on a thread that no longer exists.
    The original exception rides along as ``__cause__``.
    """


class WorkerCrashed(ServiceError):
    """A shard worker process died (or stopped responding) mid-solve.

    Raised by :class:`~repro.service.workers.ShardWorkerPool` when the
    process assigned to a batch exits or times out before answering.
    ``transient = True``: the pool respawns the worker, so the scheduler's
    :class:`~repro.service.robustness.RetryPolicy` retries the batch, and
    repeated crashes trip the shard's circuit breaker over to the bit-exact
    in-process degraded path — a dead worker degrades throughput, never
    answers.

    Parameters
    ----------
    worker_index:
        Index of the worker slot that failed.
    reason:
        Human-readable cause (``"exited"``, ``"timeout"``, ...).
    """

    transient = True

    def __init__(self, worker_index: int, reason: str) -> None:
        super().__init__(f"worker {worker_index} crashed: {reason}")
        self.worker_index = int(worker_index)
        self.reason = reason


class IntakeOverflow(ServiceError, queue.Full):
    """``submit_many`` hit the intake bound before enqueueing every request.

    Subclasses :class:`queue.Full` so existing ``except queue.Full`` callers
    keep working, but carries the explicit accepted/rejected split the plain
    exception silently dropped: ``accepted`` holds one future per request in
    input order up to (and including) every cache hit and enqueued request,
    ``rejected`` holds the requests that never entered the queue (their
    futures are failed with this same error, so nothing hangs).

    Parameters
    ----------
    accepted:
        Futures of the requests that were accepted, in input order.
    rejected:
        The requests that were not enqueued before the timeout.
    """

    def __init__(self, accepted: list, rejected: list) -> None:
        super().__init__(
            f"intake queue full: accepted {len(accepted)} request(s), "
            f"rejected {len(rejected)}"
        )
        self.accepted = accepted
        self.rejected = rejected
