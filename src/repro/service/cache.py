"""Content-addressed result cache for the fit service runtime.

A production fit service sees the same request many times — replicate
uploads, dashboard refreshes, retried clients.  Solves are deterministic
functions of (deconvolver configuration, measurement grid, measurement
vector, fit options), so the service layer can answer repeats in O(lookup):
:func:`request_fingerprint` hashes that whole tuple into a stable hex digest
and :class:`ResultCache` maps digests to finished
:class:`~repro.core.result.DeconvolutionResult` objects under an LRU entry
budget.  The scheduler consults the cache at submit time (hits never enter
the batch queue) and stores every solved result on the way out.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import OrderedDict
from typing import Hashable

import numpy as np

from repro.core.session import sigma_fingerprint, times_fingerprint
from repro.utils.rng import SeedLike

__all__ = ["ResultCache", "request_fingerprint", "seed_fingerprint"]

#: Monotonic source of never-repeating tokens for seeds without a stable
#: content identity (see :func:`seed_fingerprint`).
_OPAQUE_SEEDS = itertools.count()


def seed_fingerprint(rng: SeedLike) -> str:
    """Deterministic content token of a seed specification.

    Integer seeds and ``SeedSequence``s are pure values; a
    ``numpy.random.Generator`` is identified by its *current bit-generator
    state* (two generators at the same state produce identical fits —
    ``repr()`` of a generator would collapse every instance to
    ``"Generator(PCG64)"`` and alias distinct streams).  ``None`` means
    fresh entropy and anything unrecognised has no stable identity: those
    get a unique token every call, keeping them out of the result cache and
    out of shared batches instead of silently colliding.
    """
    if isinstance(rng, (int, np.integer)):
        return f"int:{int(rng)}"
    if isinstance(rng, np.random.SeedSequence):
        return f"seq:{rng.entropy}:{rng.spawn_key}"
    if isinstance(rng, np.random.Generator):
        return f"gen:{rng.bit_generator.state!r}"
    return f"opaque:{next(_OPAQUE_SEEDS)}"


def request_fingerprint(
    config: Hashable,
    times: np.ndarray,
    measurements: np.ndarray,
    *,
    sigma: np.ndarray | float | None = None,
    lam: float | None = None,
    lambda_method: str = "gcv",
    lambda_grid: np.ndarray | None = None,
    rng: object = 0,
) -> str:
    """Stable content hash of one fit request.

    Two requests share a fingerprint exactly when a deterministic solver
    must return identical results for them: same session configuration key,
    same measurement grid and values (bit-wise), same smoothing settings and
    the same seed content (the seed steers kernel construction and CV fold
    assignment; see :func:`seed_fingerprint` for what counts as the same
    seed — ``None`` never matches anything, including itself).

    Parameters
    ----------
    config:
        Hashable configuration key addressing the session pool shard.
    times, measurements, sigma, lam, lambda_method, lambda_grid, rng:
        As in :meth:`repro.core.deconvolver.Deconvolver.fit`.

    Returns
    -------
    str
        Hex digest; collisions are cryptographically unlikely (blake2b).
    """
    times = np.asarray(times, dtype=float)
    digest = hashlib.blake2b(digest_size=20)
    digest.update(repr(config).encode())
    digest.update(times_fingerprint(times))
    digest.update(np.ascontiguousarray(np.asarray(measurements, dtype=float)).tobytes())
    digest.update(sigma_fingerprint(times, sigma))
    digest.update(b"none" if lam is None else repr(float(lam)).encode())
    digest.update(lambda_method.encode())
    if lambda_grid is None:
        digest.update(b"default-grid")
    else:
        digest.update(np.ascontiguousarray(np.asarray(lambda_grid, dtype=float)).tobytes())
    digest.update(seed_fingerprint(rng).encode())
    return digest.hexdigest()


class ResultCache:
    """Thread-safe LRU cache from request fingerprints to fit results.

    Parameters
    ----------
    max_entries:
        Entry budget; the least recently *used* (hit or stored) entries are
        evicted once the budget is exceeded.  ``0`` disables caching (every
        lookup misses, nothing is stored).
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """The cached result for ``key`` (refreshing recency), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, result: object) -> None:
        """Store ``result`` under ``key``, evicting LRU entries over budget."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def evict_random(self, count: int, rng=None) -> int:
        """Evict up to ``count`` entries chosen by ``rng``; returns how many.

        The fault-injection harness uses this to model cache-hostile
        conditions (cold restarts, pressure evictions) deterministically:
        with a seeded generator the same keys disappear run to run.  Counts
        toward the ``evictions`` counter.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = np.random.default_rng(rng)
        with self._lock:
            keys = list(self._entries)
            if not keys:
                return 0
            victims = rng.choice(len(keys), size=min(count, len(keys)), replace=False)
            for index in victims:
                del self._entries[keys[int(index)]]
            self.evictions += len(victims)
            return len(victims)

    def stats(self) -> dict:
        """Entry count, budget and hit/miss/eviction counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
