"""Counters and latency/batch-size histograms for the fit service runtime.

The service layer (pool, scheduler, cache) records everything observable
about a running fit service into one :class:`Telemetry` object: monotonically
increasing counters (requests, batches, cache hits, errors) and value
histograms (request latency, batch size).  :meth:`Telemetry.snapshot`
collapses all of it into a plain ``dict`` of numbers — percentiles, means,
throughput, coalescing factor — suitable for printing, logging or asserting
on in tests.  All methods are thread-safe; producers, the batcher thread and
the solve workers write concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict

import numpy as np

__all__ = ["Histogram", "Telemetry"]

#: Histograms keep at most this many observations; past the cap a cheap
#: deterministic decimation (drop every other stored value) keeps memory
#: bounded while preserving the distribution shape for percentile queries.
MAX_OBSERVATIONS = 100_000


class Histogram:
    """Bounded reservoir of scalar observations with percentile queries.

    Observations are stored verbatim until :data:`MAX_OBSERVATIONS` is
    reached, after which the stored half is decimated deterministically (no
    randomness, so snapshots are reproducible).  ``count`` and ``total``
    always reflect *every* observation, decimated or not.
    """

    def __init__(self) -> None:
        self._values: list[float] = []
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self._values.append(value)
        if len(self._values) > MAX_OBSERVATIONS:
            del self._values[::2]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the stored observations."""
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    def summary(self) -> dict:
        """Count, mean, p50/p95/p99 and max of the observations."""
        if not self._values:
            return {"count": self.count, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        p50, p95, p99 = (float(v) for v in np.percentile(self._values, [50.0, 95.0, 99.0]))
        return {
            "count": self.count,
            "mean": self.total / max(1, self.count),
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "max": float(max(self._values)),
        }


class Telemetry:
    """Thread-safe metrics hub for one fit service.

    Counters and histograms are created on first use, so the scheduler, pool
    and cache can record under their own metric names without registration.
    The conventional names the service layer uses:

    * counters — ``requests`` (accepted), ``completed`` (futures resolved
      with a result), ``cache_hits``, ``deduplicated`` (bit-exact repeats
      sharing one solve row inside a batch), ``batches`` (dispatched),
      ``batched_requests`` (requests routed through batches), ``errors``,
      ``cancelled``;
    * SLO / robustness counters — ``shed`` (early-rejected at admission),
      ``deadline_missed`` (dropped stale before solving), ``retries``
      (transient solve failures retried), ``breaker_trips`` (circuit
      breakers opening), ``degraded_requests`` (served by the degraded
      serial path), ``scheduler_crashes``;
    * histograms — ``latency_seconds`` (submit to result, cache hits
      included), ``batch_size``, ``solve_seconds`` (per-batch solve
      duration feeding the adaptive window);
    * network-edge counters/gauges — per-route counters
      (``net_route_<name>``), ``net_http_requests`` / ``net_ws_messages``,
      and the point-in-time gauges ``net_connections`` /
      ``net_ws_inflight`` written by :class:`repro.service.net.FitServer`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: defaultdict[str, int] = defaultdict(int)
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, float] = {}
        self._started_at: float | None = None
        self._last_event_at: float | None = None

    def _touch(self) -> None:
        now = time.perf_counter()
        if self._started_at is None:
            self._started_at = now
        self._last_event_at = now

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] += int(amount)
            self._touch()

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name`` (creating it empty)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)
            self._touch()

    def set_gauge(self, name: str, value: float) -> None:
        """Set the point-in-time gauge ``name`` to ``value``.

        Gauges model *current* levels (open connections, in-flight stream
        requests) rather than monotonically growing counts; the network
        edge writes them and :meth:`snapshot` reports the latest values.
        """
        with self._lock:
            self._gauges[name] = float(value)

    def adjust_gauge(self, name: str, delta: float) -> float:
        """Add ``delta`` to the gauge ``name`` (creating it at zero).

        Returns the new value; connection open/close paths use the
        increment/decrement form so concurrent writers stay consistent.
        """
        with self._lock:
            value = self._gauges.get(name, 0.0) + float(delta)
            self._gauges[name] = value
            return value

    def gauge(self, name: str) -> float:
        """Current value of the gauge ``name`` (zero if never written)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def record_worker(self, index: int, **values: float) -> None:
        """Set per-worker gauges ``worker{index}_<name>`` in one locked pass.

        The process runner's :class:`~repro.service.workers.ShardWorkerPool`
        publishes each slot's liveness, in-flight depth and served-batch
        count here (``worker0_alive``, ``worker0_inflight``,
        ``worker0_batches``, ...), so ``/metrics`` and ``stats()`` expose
        the per-worker view without a worker round-trip.
        """
        with self._lock:
            for name, value in values.items():
                self._gauges[f"worker{int(index)}_{name}"] = float(value)

    def record_batch(self, counters: dict, observations: dict) -> None:
        """Apply many counter increments and observations in one locked pass.

        The scheduler's hot path records per-batch metrics (a handful of
        counters plus one latency per request) through this single
        lock round-trip instead of one :meth:`increment`/:meth:`observe`
        call per request.

        Parameters
        ----------
        counters:
            Counter name to increment amount.
        observations:
            Histogram name to a sequence of values to record.
        """
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] += int(amount)
            for name, values in observations.items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                for value in values:
                    histogram.observe(value)
            self._touch()

    def reset(self) -> None:
        """Drop every counter, histogram and the event-span clock.

        Benchmarks call this between a warm-up pass and the timed pass so
        snapshots describe only the measured window.
        """
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()
            self._started_at = None
            self._last_event_at = None

    def counter(self, name: str) -> int:
        """Current value of the counter ``name`` (zero if never written)."""
        with self._lock:
            return self._counters.get(name, 0)

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock span between the first and the latest recorded event."""
        with self._lock:
            if self._started_at is None or self._last_event_at is None:
                return 0.0
            return self._last_event_at - self._started_at

    def snapshot(self) -> dict:
        """One plain-``dict`` view of every metric.

        Returns
        -------
        dict
            ``counters`` (name to int), ``histograms`` (name to
            :meth:`Histogram.summary`), ``gauges`` (name to the latest
            point-in-time value), ``elapsed_seconds``,
            ``throughput_rps`` (completed requests over the event span),
            ``coalescing_factor`` (batched requests per dispatched batch;
            1.0 when nothing was batched yet), and the SLO rates
            ``shed_rate`` / ``deadline_miss_rate`` (shed and
            deadline-missed requests over accepted requests; 0.0 before any
            request).
        """
        with self._lock:
            counters = dict(self._counters)
            histograms = {name: h.summary() for name, h in self._histograms.items()}
            gauges = dict(self._gauges)
            if self._started_at is None or self._last_event_at is None:
                elapsed = 0.0
            else:
                elapsed = self._last_event_at - self._started_at
        batches = counters.get("batches", 0)
        batched = counters.get("batched_requests", 0)
        completed = counters.get("completed", 0)
        requests = counters.get("requests", 0)
        return {
            "counters": counters,
            "histograms": histograms,
            "gauges": gauges,
            "elapsed_seconds": elapsed,
            "throughput_rps": (completed / elapsed) if elapsed > 0 else 0.0,
            "coalescing_factor": (batched / batches) if batches > 0 else 1.0,
            "shed_rate": (counters.get("shed", 0) / requests) if requests else 0.0,
            "deadline_miss_rate": (
                counters.get("deadline_missed", 0) / requests if requests else 0.0
            ),
        }
