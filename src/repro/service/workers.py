"""Pinned worker processes for true multi-core shard execution.

The scheduler's thread runner keeps every solve under the GIL, so one hot
shard tops out at roughly one core no matter how many runner threads exist.
:class:`ShardWorkerPool` is the process runner behind
``MicroBatchScheduler(runner="process")``: a fixed set of spawn-safe worker
processes, each owning its *own* deconvolver sessions rebuilt from the
configuration key through the same (picklable) factory the parent's
:class:`~repro.service.pool.SessionPool` uses.  Shards have an affinity
worker (stable hash), but a hot shard's batches overflow to idle workers —
each worker's session is an independent warm replica, so concurrent batches
of one shard no longer serialize.

Data plane
----------
Control messages (op, ticket, header) travel over per-worker
``multiprocessing`` queues and stay tiny; the bulky payloads ride
per-worker :class:`~repro.service.shm.ShmRing` shared-memory rings — the
stacked measurement matrix on the way in, the stacked
coefficients/fitted/sigma block on the way out — so handoff never pickles
a measurement vector.  A full or undersized ring degrades to an inline
(pickled) payload; the rings are a fast path, not a correctness dependency.

Failure contract
----------------
Backend selection is propagated explicitly (``REPRO_BACKEND`` is read once
at import, so a parent's ``set_active_backend`` would otherwise silently
revert to numpy in workers), and :meth:`ShardWorkerPool.health` reports
each worker's pid, backend and batch counters for supervision.  A worker
that dies or stops answering fails its in-flight batches with
:class:`~repro.service.errors.WorkerCrashed` (``transient = True``): the
scheduler's retry policy resubmits — the pool respawns the slot on the next
dispatch — and repeated failures trip the shard's circuit breaker over to
the parent's bit-exact in-process degraded path.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue as queue_module
import threading
import time
import zlib
from typing import Hashable, Optional, Sequence

import numpy as np

from repro import config
from repro.service.errors import WorkerCrashed
from repro.service.shm import ShmRing

__all__ = ["ShardWorkerPool", "ensure_picklable"]

#: Default per-direction ring capacity per worker.
DEFAULT_RING_BYTES = 1 << 20

#: Seconds a producer waits for ring space before falling back to inline.
_RING_WAIT_S = 0.05

#: Poll interval while waiting on a response (liveness is checked per poll).
_POLL_S = 0.05


def ensure_picklable(factory) -> None:
    """Raise ``ValueError`` when ``factory`` cannot ship to a spawned worker.

    The process runner pickles the session factory into every worker's init
    payload; closures (the historical CLI style) do not pickle.  Use a
    module-level callable such as
    :class:`~repro.service.pool.SessionFactory` instead.
    """
    try:
        pickle.dumps(factory)
    except Exception as exc:
        raise ValueError(
            "the process runner requires a picklable session factory "
            "(e.g. repro.service.SessionFactory); a closure cannot be "
            f"shipped to spawned workers: {exc}"
        ) from exc


def _safe_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it pickles, else a ``RuntimeError`` describing it."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------


def _worker_solve(header: dict, matrix: np.ndarray, deconvolver, res_ring: ShmRing):
    """Run one batched solve and package the response (worker side)."""
    results = deconvolver.fit_many(
        header["times"],
        matrix,
        sigma=header["sigma"],
        lam=header["lams"],
        lambda_method=header["lambda_method"],
        lambda_grid=header["lambda_grid"],
        rng=header["rng"],
        engine="batch",
    )
    coefficients = np.stack([result.coefficients for result in results])
    fitted = np.stack([np.asarray(result.fitted, dtype=float) for result in results])
    sigma = np.stack([np.asarray(result.sigma, dtype=float) for result in results])
    block = np.concatenate([coefficients.ravel(), fitted.ravel(), sigma.ravel()])
    meta = {
        "basis": results[0].basis,
        "coefficients_shape": coefficients.shape,
        "fitted_shape": fitted.shape,
        "sigma_shape": sigma.shape,
        "rows": [
            {
                "lam": result.lam,
                "data_misfit": result.data_misfit,
                "roughness": result.roughness,
                "solver_converged": result.solver_converged,
                "solver_iterations": result.solver_iterations,
                "lambda_path": result.lambda_path,
                "mean_cycle_time": result.mean_cycle_time,
                "constraint_violations": result.constraint_violations,
                "solver_active_set": list(result.solver_active_set),
            }
            for result in results
        ],
    }
    offset = res_ring.write(block, timeout=_RING_WAIT_S)
    if offset is None:  # slow consumer / oversize: inline fallback
        return meta, ("inline", block)
    return meta, ("shm", offset, block.size)


def _worker_main(
    worker_index: int,
    factory,
    backend_name: Optional[str],
    request_queue,
    response_queue,
    request_ring_name: str,
    response_ring_name: str,
    ring_bytes: int,
) -> None:
    """Entry point of one spawned worker process.

    Serves ``("solve", ticket, header)`` and ``("ping", ticket, None)``
    messages until a ``None`` sentinel arrives.  Module-level by design:
    the ``spawn`` start method imports this module fresh and pickles only
    the arguments.
    """
    from repro import backends

    if backend_name is not None:
        # Explicit propagation: REPRO_BACKEND was read once at the parent's
        # import, so the parent's selection must be replayed here.
        backends.set_active_backend(backend_name)
    request_ring = ShmRing.attach(request_ring_name, ring_bytes)
    response_ring = ShmRing.attach(response_ring_name, ring_bytes)
    deconvolvers: dict = {}
    batches = 0
    requests_served = 0
    started = time.monotonic()
    while True:
        message = request_queue.get()
        if message is None:
            break
        op, ticket, header = message
        try:
            if op == "ping":
                health = {
                    "worker": worker_index,
                    "pid": os.getpid(),
                    "requested_backend": backend_name,
                    "active_backend": backends.active_backend().name,
                    "batches": batches,
                    "requests": requests_served,
                    "uptime_seconds": time.monotonic() - started,
                }
                response_queue.put(("ok", ticket, health, None))
                continue
            matrix_ref = header["matrix"]
            if matrix_ref[0] == "shm":
                _, offset, shape = matrix_ref
                # Copy out of the ring immediately so the slot can be
                # released (and reused by the parent) during the solve.
                matrix = np.array(request_ring.array(offset, shape))
                request_ring.release(offset, matrix.nbytes)
            else:
                matrix = matrix_ref[1]
            deconvolver = deconvolvers.get(header["config"])
            if deconvolver is None:
                deconvolver = deconvolvers[header["config"]] = factory(header["config"])
            meta, block_ref = _worker_solve(header, matrix, deconvolver, response_ring)
            batches += 1
            requests_served += matrix.shape[1]
            response_queue.put(("ok", ticket, meta, block_ref))
        except BaseException as exc:  # noqa: BLE001 - must answer, not die
            response_queue.put(("error", ticket, _safe_exception(exc), None))
    request_ring.close()
    response_ring.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Ticket:
    """Parent-side slot a submitting thread parks on until its answer lands."""

    __slots__ = ("event", "kind", "meta", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.kind: Optional[str] = None
        self.meta = None
        self.payload: Optional[np.ndarray] = None


class _Worker:
    """One spawned worker process plus its parent-side plumbing."""

    def __init__(self, index: int, pool: "ShardWorkerPool") -> None:
        import multiprocessing

        self.index = index
        context = multiprocessing.get_context("spawn")
        self.request_queue = context.Queue()
        self.response_queue = context.Queue()
        self.request_ring = ShmRing.create(pool.ring_bytes)
        self.response_ring = ShmRing.create(pool.ring_bytes)
        self.submit_lock = threading.Lock()
        self.pending: dict[int, _Ticket] = {}
        self.pending_lock = threading.Lock()
        self.in_flight = 0
        self.batches = 0
        self.started_at = time.monotonic()
        self.last_response_at: Optional[float] = None
        self._stop = threading.Event()
        self.process = context.Process(
            target=_worker_main,
            args=(
                index,
                pool.factory,
                pool.backend,
                self.request_queue,
                self.response_queue,
                self.request_ring.name,
                self.response_ring.name,
                pool.ring_bytes,
            ),
            daemon=True,
            name=f"repro-shard-worker-{index}",
        )
        self.process.start()
        self.reader = threading.Thread(
            target=self._read_loop, daemon=True, name=f"repro-worker-reader-{index}"
        )
        self.reader.start()

    def alive(self) -> bool:
        return self.process.is_alive() and not self._stop.is_set()

    def _read_loop(self) -> None:
        while not self._stop.is_set():
            try:
                message = self.response_queue.get(timeout=0.2)
            except (queue_module.Empty, OSError, EOFError, ValueError):
                if self._stop.is_set():
                    return
                continue
            kind, ticket_id, meta, block_ref = message
            payload = None
            if block_ref is not None:
                if block_ref[0] == "shm":
                    _, offset, count = block_ref
                    payload = np.array(self.response_ring.array(offset, (count,)))
                    self.response_ring.release(offset, count * 8)
                else:
                    payload = block_ref[1]
            with self.pending_lock:
                ticket = self.pending.pop(ticket_id, None)
            self.last_response_at = time.monotonic()
            if ticket is not None:
                ticket.kind = kind
                ticket.meta = meta
                ticket.payload = payload
                ticket.event.set()

    def fail_pending(self, exc: BaseException) -> None:
        """Resolve every in-flight ticket with ``exc`` (worker died)."""
        with self.pending_lock:
            tickets = list(self.pending.values())
            self.pending.clear()
        for ticket in tickets:
            ticket.kind = "error"
            ticket.meta = exc
            ticket.event.set()

    def shutdown(self, timeout: float) -> None:
        """Stop the process (sentinel, then join, then terminate/kill)."""
        self._stop.set()
        try:
            self.request_queue.put_nowait(None)
        except (queue_module.Full, OSError, ValueError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=1.0)
        self.fail_pending(WorkerCrashed(self.index, "shut down"))
        for mp_queue in (self.request_queue, self.response_queue):
            try:
                mp_queue.close()
                mp_queue.cancel_join_thread()
            except (OSError, ValueError):
                pass
        self.request_ring.close()
        self.response_ring.close()


class ShardWorkerPool:
    """Fixed-size pool of pinned solver processes with shared-memory handoff.

    Parameters
    ----------
    factory:
        Picklable ``factory(key) -> Deconvolver`` (see
        :class:`~repro.service.pool.SessionFactory`); each worker builds its
        own sessions from it, keyed by the request's configuration.
    workers:
        Number of worker slots (default
        :func:`repro.config.default_pool_size` for ``kind="process"``).
        Slots spawn lazily: cold traffic on one shard uses one process,
        a hot shard fans out to more.
    backend:
        Kernel-backend name replayed inside every worker (default: the
        parent's active backend) — see the module docstring.
    ring_bytes:
        Per-direction shared-memory ring capacity per worker.
    solve_timeout_s:
        Seconds a dispatched batch may run before the worker is declared
        dead (generous: covers cold session builds on loaded machines).
    telemetry:
        Optional :class:`~repro.service.telemetry.Telemetry` receiving
        per-worker gauges (``worker{i}_alive`` / ``_inflight`` /
        ``_batches`` / ``_restarts``).
    """

    def __init__(
        self,
        factory,
        *,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        solve_timeout_s: float = 300.0,
        telemetry=None,
    ) -> None:
        ensure_picklable(factory)
        from repro import backends

        self.factory = factory
        self.num_workers = int(
            workers
            if workers is not None
            else config.default_pool_size(None, kind="process")
        )
        if self.num_workers < 1:
            raise ValueError("workers must be at least 1")
        self.backend = backend if backend is not None else backends.active_backend().name
        self.ring_bytes = int(ring_bytes)
        self.solve_timeout_s = float(solve_timeout_s)
        self.telemetry = telemetry
        self._slots: dict[int, _Worker] = {}
        self._restarts = [0] * self.num_workers
        self._lock = threading.Lock()
        self._tickets = itertools.count()
        self._closed = False

    # -- worker selection ----------------------------------------------

    def _ensure(self, index: int) -> _Worker:
        # Caller holds self._lock.
        worker = self._slots.get(index)
        if worker is not None and worker.alive():
            return worker
        if worker is not None:
            self._restarts[index] += 1
            worker.fail_pending(WorkerCrashed(index, "exited"))
        worker = _Worker(index, self)
        self._slots[index] = worker
        self._gauge(index, alive=1.0)
        return worker

    def _worker_for(self, shard: Hashable) -> _Worker:
        """Affinity-first, least-busy worker selection.

        The shard's stable-hash slot is preferred (its worker's sessions are
        warm for this configuration); when it is busy, an idle live worker
        takes the batch, then an unspawned slot, then the least busy — so a
        single hot shard scales across every worker instead of serializing
        on its affinity slot.
        """
        preferred = zlib.crc32(repr(shard).encode()) % self.num_workers
        order = [(preferred + step) % self.num_workers for step in range(self.num_workers)]
        with self._lock:
            if self._closed:
                raise WorkerCrashed(preferred, "pool closed")
            for index in order:
                worker = self._slots.get(index)
                if worker is not None and worker.alive() and worker.in_flight == 0:
                    return self._ensure(index)
            for index in order:
                worker = self._slots.get(index)
                if worker is None or not worker.alive():
                    return self._ensure(index)
            chosen = min(order, key=lambda index: self._slots[index].in_flight)
            return self._ensure(chosen)

    def _gauge(self, index: int, **values: float) -> None:
        if self.telemetry is not None:
            self.telemetry.record_worker(index, **values)

    # -- request paths -------------------------------------------------

    def _await(self, worker: _Worker, ticket: _Ticket, timeout: float):
        deadline = time.monotonic() + timeout
        while not ticket.event.wait(_POLL_S):
            if not worker.process.is_alive():
                worker.fail_pending(WorkerCrashed(worker.index, "exited"))
            if ticket.event.is_set():
                break
            if time.monotonic() >= deadline:
                ticket.event.set()  # stop the reader from racing us
                raise WorkerCrashed(worker.index, f"timeout after {timeout:.1f}s")
        if ticket.kind == "error":
            raise ticket.meta
        return ticket.meta, ticket.payload

    def solve_batch(
        self,
        shard: Hashable,
        *,
        times: np.ndarray,
        matrix: np.ndarray,
        sigma,
        lams: Optional[Sequence[float]],
        lambda_method: str,
        lambda_grid,
        rng,
        timeout: Optional[float] = None,
    ) -> list:
        """Dispatch one coalesced batch to a worker; list of results.

        The measurement matrix rides the worker's request ring (inline
        pickle fallback when full); the stacked result arrays come back on
        the response ring.  Raises
        :class:`~repro.service.errors.WorkerCrashed` when the worker dies
        or times out — the scheduler's retry/breaker machinery owns what
        happens next.
        """
        worker = self._worker_for(shard)
        ticket_id = next(self._tickets)
        ticket = _Ticket()
        matrix = np.ascontiguousarray(matrix, dtype=float)
        header = {
            "config": shard,
            "times": np.asarray(times, dtype=float),
            "sigma": sigma,
            "lams": None if lams is None else list(lams),
            "lambda_method": lambda_method,
            "lambda_grid": lambda_grid,
            "rng": rng,
        }
        with self._lock:
            worker.in_flight += 1
        self._gauge(worker.index, inflight=float(worker.in_flight))
        try:
            with worker.submit_lock:
                offset = worker.request_ring.write(matrix, timeout=_RING_WAIT_S)
                if offset is None:
                    header["matrix"] = ("inline", matrix)
                else:
                    header["matrix"] = ("shm", offset, matrix.shape)
                with worker.pending_lock:
                    worker.pending[ticket_id] = ticket
                worker.request_queue.put(("solve", ticket_id, header))
            meta, payload = self._await(
                worker, ticket, timeout if timeout is not None else self.solve_timeout_s
            )
        finally:
            with self._lock:
                worker.in_flight -= 1
            with worker.pending_lock:
                worker.pending.pop(ticket_id, None)
            self._gauge(worker.index, inflight=float(worker.in_flight))
        worker.batches += 1
        self._gauge(worker.index, batches=float(worker.batches))
        return self._build_results(header, matrix, meta, payload)

    def _build_results(
        self, header: dict, matrix: np.ndarray, meta: dict, payload: np.ndarray
    ) -> list:
        """Rebuild detached results from a worker's response block."""
        from repro.core.result import DeconvolutionResult

        coeff_shape = meta["coefficients_shape"]
        fitted_shape = meta["fitted_shape"]
        sigma_shape = meta["sigma_shape"]
        sizes = [int(np.prod(shape)) for shape in (coeff_shape, fitted_shape, sigma_shape)]
        coefficients = payload[: sizes[0]].reshape(coeff_shape)
        fitted = payload[sizes[0] : sizes[0] + sizes[1]].reshape(fitted_shape)
        sigma = payload[sizes[0] + sizes[1] :].reshape(sigma_shape)
        results = []
        for row, info in enumerate(meta["rows"]):
            results.append(
                DeconvolutionResult(
                    coefficients=coefficients[row].copy(),
                    basis=meta["basis"],
                    lam=info["lam"],
                    times=header["times"],
                    measurements=np.array(matrix[:, row]),
                    fitted=fitted[row].copy(),
                    sigma=sigma[row].copy(),
                    data_misfit=info["data_misfit"],
                    roughness=info["roughness"],
                    solver_converged=info["solver_converged"],
                    solver_iterations=info["solver_iterations"],
                    lambda_path=info["lambda_path"],
                    mean_cycle_time=info["mean_cycle_time"],
                    constraint_violations=info["constraint_violations"],
                    solver_active_set=info["solver_active_set"],
                )
            )
        return results

    def ping(self, index: int, timeout: float = 10.0) -> dict:
        """Round-trip health probe of worker ``index`` (spawns it if cold)."""
        with self._lock:
            if self._closed:
                raise WorkerCrashed(index, "pool closed")
            worker = self._ensure(index)
        ticket_id = next(self._tickets)
        ticket = _Ticket()
        with worker.submit_lock:
            with worker.pending_lock:
                worker.pending[ticket_id] = ticket
            worker.request_queue.put(("ping", ticket_id, None))
        meta, _ = self._await(worker, ticket, timeout)
        return meta

    def health(self) -> list[dict]:
        """Per-slot health report (pid, backend, counters; no cold spawns).

        Only live slots are pinged; unspawned or dead slots report
        ``alive: False`` without side effects, so the scheduler's heartbeat
        path never pays a worker spawn.
        """
        report = []
        for index in range(self.num_workers):
            with self._lock:
                worker = self._slots.get(index)
            if worker is None or not worker.alive():
                report.append(
                    {
                        "worker": index,
                        "alive": False,
                        "restarts": self._restarts[index],
                    }
                )
                self._gauge(index, alive=0.0)
                continue
            try:
                health = dict(self.ping(index, timeout=10.0))
                health["alive"] = True
            except WorkerCrashed:
                health = {"worker": index, "alive": False}
            health["restarts"] = self._restarts[index]
            health["in_flight"] = worker.in_flight
            report.append(health)
            self._gauge(index, alive=float(health["alive"]))
        return report

    def stats(self) -> dict:
        """Cheap parent-side snapshot (no worker round-trips)."""
        with self._lock:
            per_worker = [
                {
                    "worker": index,
                    "spawned": index in self._slots,
                    "alive": bool(
                        self._slots[index].alive() if index in self._slots else False
                    ),
                    "in_flight": self._slots[index].in_flight
                    if index in self._slots
                    else 0,
                    "batches": self._slots[index].batches if index in self._slots else 0,
                    "restarts": self._restarts[index],
                }
                for index in range(self.num_workers)
            ]
        return {
            "workers": self.num_workers,
            "backend": self.backend,
            "ring_bytes": self.ring_bytes,
            "per_worker": per_worker,
        }

    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker (sentinel → join → terminate); idempotent.

        After ``close`` returns no child process of the pool is running —
        the no-orphans guarantee ``shutdown(drain=True)`` tests assert on.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._slots.values())
            self._slots.clear()
        for worker in workers:
            worker.shutdown(timeout)
            self._gauge(worker.index, alive=0.0, inflight=0.0)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(timeout=1.0)
        except Exception:
            pass
