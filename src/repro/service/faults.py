"""Deterministic, seeded fault injection for the fit service runtime.

Robustness claims are only as good as the failures they were tested
against, so the service layer exposes explicit *injection points* behind its
pool/scheduler boundaries and this module drives them from one seeded plan:

* ``solver`` — the batched solve raises a transient
  :class:`InjectedFault` before touching the session (exercises the retry
  policy, circuit breaker and degraded serial path);
* ``slow_solve`` — the solve is delayed by ``slow_solve_ms`` (exercises
  deadline misses, admission-control shedding and the adaptive window);
* ``session_build`` — the pool factory raises while building a shard
  (exercises lease retries and error propagation to queued futures);
* ``cache_eviction`` — stored results are randomly evicted (exercises
  cache-hostile recovery: correctness must never depend on a hit).

Every decision is drawn from one seeded generator under a lock, so a given
``(spec, seed)`` produces the same decision *sequence* run to run; with a
single solve worker the assignment of decisions to events is fully
deterministic, which is how the chaos smoke suite pins its expectations.
The degraded serial path deliberately sits *behind* the injection points —
faults model the batched engine failing, and the fallback must not inherit
its failures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.service.errors import ServiceError

__all__ = ["FaultPlan", "FaultSpec", "InjectedFault"]


class InjectedFault(ServiceError):
    """A failure raised on purpose by a :class:`FaultPlan`.

    Parameters
    ----------
    site:
        The injection point (``"solver"`` or ``"session_build"``).

    Notes
    -----
    ``transient`` is ``True``: injected faults model flaky infrastructure,
    so the default :class:`~repro.service.robustness.RetryPolicy` retries
    them.
    """

    transient = True

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """Rates and shapes of the faults a :class:`FaultPlan` injects.

    Attributes
    ----------
    solver_error_rate:
        Probability that a batched solve raises a transient
        :class:`InjectedFault` (per solve attempt, retries included).
    slow_solve_rate:
        Probability that a solve is delayed by ``slow_solve_ms``.
    slow_solve_ms:
        Injected delay for slow solves.
    session_build_error_rate:
        Probability that a pool-factory build raises.
    cache_eviction_rate:
        Probability (per stored batch) that cached results are evicted.
    cache_eviction_count:
        How many random entries each eviction event drops.
    seed:
        Seed of the decision stream.
    """

    solver_error_rate: float = 0.0
    slow_solve_rate: float = 0.0
    slow_solve_ms: float = 5.0
    session_build_error_rate: float = 0.0
    cache_eviction_rate: float = 0.0
    cache_eviction_count: int = 4
    seed: int = 0


class FaultPlan:
    """Seeded driver of the service layer's fault-injection points.

    Pass an instance to :class:`~repro.service.scheduler.MicroBatchScheduler`
    (``fault_plan=``) to arm the solver/slow-solve/cache points, and wrap the
    pool factory with :meth:`wrap_factory` to arm session-build failures.
    A plan with all rates at zero is a pure observer: the scheduler still
    calls :meth:`before_solve`, so tests can record dispatch order through
    ``history`` without perturbing anything.

    Parameters
    ----------
    spec:
        The fault rates and seed.
    record:
        Keep an in-order ``history`` of every decision (site, shard, fired)
        for assertions; bounded work, off by default for long runs.
    """

    def __init__(self, spec: FaultSpec | None = None, *, record: bool = False) -> None:
        self.spec = spec if spec is not None else FaultSpec()
        self._rng = np.random.default_rng(self.spec.seed)
        self._lock = threading.Lock()
        self._record = bool(record)
        self.history: list[tuple] = []
        self.injected: dict[str, int] = {
            "solver": 0,
            "slow_solve": 0,
            "session_build": 0,
            "cache_eviction": 0,
        }

    def _draw(self, site: str, shard: Hashable, rate: float) -> bool:
        with self._lock:
            fired = rate > 0.0 and float(self._rng.random()) < rate
            if fired:
                self.injected[site] += 1
            if self._record:
                self.history.append((site, shard, fired))
        return fired

    def before_solve(self, shard: Hashable, batch_size: int) -> None:
        """Solver-boundary hook: may sleep (slow solve) or raise.

        Called by the scheduler inside the shard lock immediately before the
        batched ``fit_many`` dispatch; the raise therefore models the batch
        engine failing, not the session being corrupted.
        """
        if self._draw("slow_solve", shard, self.spec.slow_solve_rate):
            time.sleep(self.spec.slow_solve_ms / 1e3)
        if self._draw("solver", shard, self.spec.solver_error_rate):
            raise InjectedFault("solver")

    def on_session_build(self, key: Hashable) -> None:
        """Pool-factory hook: may raise a transient build failure."""
        if self._draw("session_build", key, self.spec.session_build_error_rate):
            raise InjectedFault("session_build")

    def on_cache_store(self, cache) -> None:
        """Cache hook: may evict random entries after a batch stores results."""
        if self._draw("cache_eviction", None, self.spec.cache_eviction_rate):
            with self._lock:
                eviction_rng = np.random.default_rng(self._rng.integers(2**32))
            cache.evict_random(self.spec.cache_eviction_count, rng=eviction_rng)

    def wrap_factory(self, factory):
        """Wrap a pool factory so builds pass through the injection point."""

        def faulty_factory(key: Hashable):
            self.on_session_build(key)
            return factory(key)

        return faulty_factory

    def stats(self) -> dict:
        """Injection counts per site plus the spec's rates."""
        with self._lock:
            injected = dict(self.injected)
        return {"injected": injected, "spec": self.spec.__dict__.copy()}
