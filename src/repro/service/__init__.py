"""Micro-batching fit service runtime on top of the session layer.

The :mod:`repro.service` package turns the library into a serveable
long-lived runtime for concurrent deconvolution traffic:

* :class:`~repro.service.pool.SessionPool` — fit sessions sharded by
  deconvolver configuration, LRU-bounded by entry count / approximate bytes;
* :class:`~repro.service.scheduler.MicroBatchScheduler` — bounded-queue
  intake from many producer threads, time/size-windowed coalescing into
  stacked multi-RHS solves, futures for responses, graceful drain/shutdown;
* :class:`~repro.service.workers.ShardWorkerPool` +
  :class:`~repro.service.shm.ShmRing` — the process execution engine behind
  ``MicroBatchScheduler(runner="process")``: pinned spawn-safe worker
  processes with shared-memory payload handoff for true multi-core solves;
* :class:`~repro.service.cache.ResultCache` — content-addressed result
  cache answering bit-exact repeats in O(lookup);
* :class:`~repro.service.telemetry.Telemetry` — counters plus latency and
  batch-size histograms with a ``snapshot()`` dict;
* :mod:`~repro.service.errors` — the typed error taxonomy every accepted
  request terminates in (shed, deadline-missed, crashed, overflowed);
* :mod:`~repro.service.robustness` — retry policy, per-shard circuit
  breaker and the adaptive micro-batching window;
* :mod:`~repro.service.faults` — deterministic seeded fault injection
  behind the solve/build/cache boundaries for the chaos scenario suite;
* :mod:`~repro.service.loadgen` — deterministic seeded workload generation
  and chaos scenarios for benchmarks and ``repro serve-bench``;
* :mod:`~repro.service.net` — the asyncio HTTP/WebSocket network edge
  (versioned wire protocol, ops routes, bundled blocking clients) serving
  a scheduler over real sockets (``repro serve``).  Imported lazily — the
  in-process service layer never pays for it.

Responses are bit-identical (to 1e-10) to direct
:meth:`~repro.core.deconvolver.Deconvolver.fit` calls; the service layer
only changes *when* and *together with what* each request is solved.
"""

from repro.service.cache import ResultCache, request_fingerprint
from repro.service.errors import (
    DeadlineExceeded,
    IntakeOverflow,
    RequestShed,
    SchedulerCrashed,
    ServiceError,
    WorkerCrashed,
)
from repro.service.faults import FaultPlan, FaultSpec, InjectedFault
from repro.service.loadgen import (
    SCENARIOS,
    Scenario,
    WorkloadSpec,
    build_workload,
    max_coefficient_gap,
    serial_reference,
    warm_serial_reference,
)
from repro.service.pool import PoolEntry, SessionFactory, SessionPool
from repro.service.robustness import AdaptiveWindow, CircuitBreaker, RetryPolicy
from repro.service.scheduler import DEFAULT_CONFIG_KEY, FitRequest, MicroBatchScheduler
from repro.service.shm import ShmRing
from repro.service.telemetry import Histogram, Telemetry
from repro.service.workers import ShardWorkerPool, ensure_picklable

__all__ = [
    "DEFAULT_CONFIG_KEY",
    "SCENARIOS",
    "AdaptiveWindow",
    "CircuitBreaker",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "FitRequest",
    "Histogram",
    "InjectedFault",
    "IntakeOverflow",
    "MicroBatchScheduler",
    "PoolEntry",
    "RequestShed",
    "ResultCache",
    "RetryPolicy",
    "Scenario",
    "SchedulerCrashed",
    "ServiceError",
    "SessionFactory",
    "SessionPool",
    "ShardWorkerPool",
    "ShmRing",
    "Telemetry",
    "WorkerCrashed",
    "WorkloadSpec",
    "build_workload",
    "ensure_picklable",
    "max_coefficient_gap",
    "request_fingerprint",
    "serial_reference",
    "warm_serial_reference",
]
