"""Micro-batching fit service runtime on top of the session layer.

The :mod:`repro.service` package turns the library into a serveable
long-lived runtime for concurrent deconvolution traffic:

* :class:`~repro.service.pool.SessionPool` — fit sessions sharded by
  deconvolver configuration, LRU-bounded by entry count / approximate bytes;
* :class:`~repro.service.scheduler.MicroBatchScheduler` — bounded-queue
  intake from many producer threads, time/size-windowed coalescing into
  stacked multi-RHS solves, futures for responses, graceful drain/shutdown;
* :class:`~repro.service.cache.ResultCache` — content-addressed result
  cache answering bit-exact repeats in O(lookup);
* :class:`~repro.service.telemetry.Telemetry` — counters plus latency and
  batch-size histograms with a ``snapshot()`` dict;
* :mod:`~repro.service.loadgen` — deterministic seeded workload generation
  for benchmarks and ``repro serve-bench``.

Responses are bit-identical (to 1e-10) to direct
:meth:`~repro.core.deconvolver.Deconvolver.fit` calls; the service layer
only changes *when* and *together with what* each request is solved.
"""

from repro.service.cache import ResultCache, request_fingerprint
from repro.service.loadgen import (
    WorkloadSpec,
    build_workload,
    max_coefficient_gap,
    serial_reference,
    warm_serial_reference,
)
from repro.service.pool import PoolEntry, SessionPool
from repro.service.scheduler import DEFAULT_CONFIG_KEY, FitRequest, MicroBatchScheduler
from repro.service.telemetry import Histogram, Telemetry

__all__ = [
    "DEFAULT_CONFIG_KEY",
    "FitRequest",
    "Histogram",
    "MicroBatchScheduler",
    "PoolEntry",
    "ResultCache",
    "SessionPool",
    "Telemetry",
    "WorkloadSpec",
    "build_workload",
    "max_coefficient_gap",
    "request_fingerprint",
    "serial_reference",
    "warm_serial_reference",
]
