"""Network front end of the fit service: protocol, server, clients.

The edge layer exposing :class:`~repro.service.scheduler.MicroBatchScheduler`
over real sockets:

* :mod:`~repro.service.net.protocol` — the versioned, typed JSON wire
  schema (fit/result/error/hello frames, taxonomy mapping);
* :mod:`~repro.service.net.ws` — minimal RFC 6455 WebSocket framing;
* :mod:`~repro.service.net.server` — the asyncio HTTP + WebSocket server
  with ops routes and slow-consumer backpressure;
* :mod:`~repro.service.net.client` — blocking HTTP and stream clients for
  benches, tests and scripts.
"""

from repro.service.net.client import FitHTTPClient, StreamClient
from repro.service.net.protocol import (
    FRAME_KINDS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Frame,
    ProtocolError,
    RemoteError,
    VersionMismatch,
    WireError,
    WireFit,
    WireHello,
    WireResult,
    decode_frame,
    error_to_frame,
    frame_to_error,
)
from repro.service.net.server import FitServer, ServerHandle, serve_in_thread

__all__ = [
    "FRAME_KINDS",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "FitHTTPClient",
    "FitServer",
    "Frame",
    "ProtocolError",
    "RemoteError",
    "ServerHandle",
    "StreamClient",
    "VersionMismatch",
    "WireError",
    "WireFit",
    "WireHello",
    "WireResult",
    "decode_frame",
    "error_to_frame",
    "frame_to_error",
    "serve_in_thread",
]
