"""Blocking clients for the fit service network edge.

Two thin, dependency-free clients over the stdlib socket stack, speaking
the :mod:`repro.service.net.protocol` frames:

* :class:`FitHTTPClient` — request/response over HTTP/1.1 keep-alive
  (``http.client``).  Typed errors come back as the *original* taxonomy
  exceptions via :func:`~repro.service.net.protocol.frame_to_error`, so
  remote calls fail the same way in-process calls do.
* :class:`StreamClient` — the WebSocket streaming route on a raw socket,
  with client-side masking per RFC 6455 and the correlation-id bookkeeping
  for out-of-order completion.

Both are what the CLI bench and the integration test layer drive against
real sockets; they are deliberately synchronous so plain threads (and the
seeded load generator) can use them without an event loop.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import uuid

from repro import config
from repro.service.net import ws
from repro.service.net.protocol import (
    PROTOCOL_VERSION,
    Frame,
    ProtocolError,
    RemoteError,
    WireError,
    WireFit,
    WireHello,
    WireResult,
    decode_frame,
    frame_to_error,
)

__all__ = ["FitHTTPClient", "StreamClient"]


def _raise_from_frame(frame: Frame) -> None:
    """Raise the typed exception an error frame describes."""
    raise frame_to_error(WireError.from_payload(frame.payload))


def _coerce_wire_fit(wire: WireFit | dict) -> WireFit:
    """Accept a :class:`WireFit` or its plain-dict payload form."""
    if isinstance(wire, WireFit):
        return wire
    if isinstance(wire, dict):
        return WireFit.from_payload(wire)
    raise TypeError(f"expected a WireFit or dict payload, got {type(wire).__name__}")


class FitHTTPClient:
    """Blocking HTTP client of the fit service edge.

    One keep-alive connection per client instance; instances are not
    thread-safe (``http.client`` is not), so concurrent callers each hold
    their own — which is exactly how the bench models independent clients.

    Parameters
    ----------
    host, port:
        Address of a running :class:`~repro.service.net.server.FitServer`.
    timeout:
        Socket timeout in seconds for each request/response round-trip.
    """

    def __init__(
        self,
        host: str = config.DEFAULT_NET_HOST,
        port: int = config.DEFAULT_NET_PORT,
        *,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._conn = http.client.HTTPConnection(host, self.port, timeout=timeout)

    def close(self) -> None:
        """Close the underlying keep-alive connection."""
        self._conn.close()

    def __enter__(self) -> "FitHTTPClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- low level ------------------------------------------------------

    def _round_trip(self, method: str, path: str, body: str | None = None) -> tuple[int, bytes]:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, OSError):
            # A dropped keep-alive connection (server restart, idle close):
            # reconnect once, then let failures propagate.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
        return response.status, data

    def _call(self, path: str, frame: Frame, expect: str) -> Frame:
        status, data = self._round_trip("POST", path, frame.encode())
        reply = decode_frame(data)
        if reply.kind == "error":
            _raise_from_frame(reply)
        if reply.kind != expect:
            raise RemoteError(
                f"expected a {expect} frame, got {reply.kind!r}", http_status=status
            )
        return reply

    def get_json(self, path: str) -> dict:
        """GET an ops route (``/healthz``, ``/metrics``, ...) as a dict."""
        _status, data = self._round_trip("GET", path)
        return json.loads(data)

    # -- fit API --------------------------------------------------------

    def fit(self, wire: WireFit | dict) -> WireResult:
        """Solve one fit remotely; raises the typed taxonomy on failure.

        Accepts a :class:`WireFit` or its plain-dict payload form (the
        latter is validated through :meth:`WireFit.from_payload`).
        """
        wire = _coerce_wire_fit(wire)
        reply = self._call("/v1/fit", Frame("fit", wire.to_payload()), "result")
        return WireResult.from_payload(reply.payload)

    def fit_batch(self, wires: list[WireFit | dict]) -> list[WireResult | Exception]:
        """Solve a batch remotely; one result *or* typed exception per entry.

        Mirrors the scheduler's ``submit_many`` overflow contract: a partial
        intake failure yields per-entry
        :class:`~repro.service.errors.IntakeOverflow` exceptions for the
        rejected tail while accepted entries still return results.
        """
        payload = {"requests": [_coerce_wire_fit(wire).to_payload() for wire in wires]}
        status, data = self._round_trip("POST", "/v1/fit/batch", Frame("batch_fit", payload).encode())
        reply = decode_frame(data)
        if reply.kind == "error":
            _raise_from_frame(reply)
        if reply.kind != "batch_result":
            raise RemoteError(
                f"expected a batch_result frame, got {reply.kind!r}", http_status=status
            )
        out: list[WireResult | Exception] = []
        for item in reply.payload.get("results", []):
            if not isinstance(item, dict):
                raise ProtocolError("batch_result entries must be objects")
            if item.get("kind") == "result":
                out.append(WireResult.from_payload(item.get("payload", {})))
            else:
                out.append(frame_to_error(WireError.from_payload(item.get("payload", {}))))
        return out

    def healthz(self) -> dict:
        """The ``/healthz`` liveness document."""
        return self.get_json("/healthz")

    def metrics(self) -> dict:
        """The live ``/metrics`` telemetry snapshot."""
        return self.get_json("/metrics")

    def pool(self) -> dict:
        """The ``/pool`` scheduler/session-pool stats document."""
        return self.get_json("/pool")

    def backends(self) -> dict:
        """The ``/backends`` kernel-backend registry document."""
        return self.get_json("/backends")


class StreamClient:
    """Blocking WebSocket client of the ``/v1/stream`` route.

    Performs the RFC 6455 handshake on a raw socket, sends masked fit
    frames tagged with correlation ids, and reads result/error frames in
    whatever order the server finishes them.  ``recv_frame`` surfaces each
    frame; :meth:`collect` gathers responses for a set of submitted ids.

    A *deliberately slow* consumer — the backpressure regression test —
    just submits many fits and delays its ``recv_frame`` calls; the server
    must cap that connection's in-flight work at its advertised window.

    Parameters
    ----------
    host, port:
        Address of a running :class:`~repro.service.net.server.FitServer`.
    timeout:
        Socket timeout in seconds for reads during the handshake and
        :meth:`recv_frame`.
    """

    def __init__(
        self,
        host: str = config.DEFAULT_NET_HOST,
        port: int = config.DEFAULT_NET_PORT,
        *,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout=timeout)
        self._send_lock = threading.Lock()
        self.hello = self._handshake()

    def _handshake(self) -> WireHello:
        key = uuid.uuid4().hex
        request = (
            f"GET /v1/stream HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        )
        self._sock.sendall(request.encode("latin-1"))
        # Read the upgrade response head byte-by-byte up to the blank line;
        # everything after it is WebSocket framing and must not be consumed.
        head = bytearray()
        while not head.endswith(b"\r\n\r\n"):
            chunk = self._sock.recv(1)
            if not chunk:
                raise ConnectionError("server closed during WebSocket handshake")
            head += chunk
            if len(head) > 65536:
                raise ProtocolError("oversized WebSocket handshake response")
        status_line = bytes(head).split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise ProtocolError(f"WebSocket upgrade refused: {status_line!r}")
        hello = self.recv_frame()
        if hello.kind != "hello":
            raise ProtocolError(f"expected a hello frame, got {hello.kind!r}")
        wire = WireHello.from_payload(hello.payload)
        if PROTOCOL_VERSION not in wire.versions:
            raise ProtocolError(
                f"server speaks versions {wire.versions}, not {PROTOCOL_VERSION}"
            )
        return wire

    def _recv_exactly(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = self._sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionError("server closed the stream mid-frame")
            buf += chunk
        return bytes(buf)

    # -- frame API ------------------------------------------------------

    def send_frame(self, frame: Frame) -> None:
        """Send one masked text frame (thread-safe)."""
        data = ws.build_frame(ws.OP_TEXT, frame.encode().encode(), mask=True)
        with self._send_lock:
            self._sock.sendall(data)

    def submit(self, wire: WireFit | dict, *, frame_id: str | None = None) -> str:
        """Send one fit frame (``WireFit`` or dict payload); returns its id."""
        wire = _coerce_wire_fit(wire)
        frame_id = frame_id if frame_id is not None else uuid.uuid4().hex
        self.send_frame(Frame("fit", wire.to_payload(), id=frame_id))
        return frame_id

    def recv_frame(self) -> Frame:
        """Read the next data frame (transparently answering pings)."""
        while True:
            opcode, payload = ws.read_message_sync(self._recv_exactly)
            if opcode == ws.OP_PING:
                with self._send_lock:
                    self._sock.sendall(ws.build_frame(ws.OP_PONG, payload, mask=True))
                continue
            if opcode == ws.OP_PONG:
                continue
            if opcode == ws.OP_CLOSE:
                raise ConnectionError("server closed the stream")
            return decode_frame(payload)

    def collect(self, frame_ids: set[str] | list[str]) -> dict[str, WireResult | Exception]:
        """Read frames until every id in ``frame_ids`` has a response.

        Returns a mapping of correlation id to :class:`WireResult` or the
        reconstructed typed exception; unsolicited frames are an error.
        """
        pending = set(frame_ids)
        out: dict[str, WireResult | Exception] = {}
        while pending:
            frame = self.recv_frame()
            if frame.id is None or frame.id not in pending:
                raise ProtocolError(f"unexpected frame {frame.kind!r} id={frame.id!r}")
            pending.discard(frame.id)
            if frame.kind == "result":
                out[frame.id] = WireResult.from_payload(frame.payload)
            elif frame.kind == "error":
                out[frame.id] = frame_to_error(WireError.from_payload(frame.payload))
            else:
                raise ProtocolError(f"streams answer result/error frames, got {frame.kind!r}")
        return out

    def close(self) -> None:
        """Send a close frame (best effort) and drop the socket."""
        try:
            with self._send_lock:
                self._sock.sendall(
                    ws.build_frame(ws.OP_CLOSE, b"\x03\xe8", mask=True)  # 1000
                )
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "StreamClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
