"""Versioned, typed wire protocol of the fit service network edge.

Everything that crosses a socket is a JSON *frame*: an envelope carrying the
schema version (``v``), the frame ``kind``, an optional correlation ``id``
(WebSocket streaming) and a typed ``payload``.  The payload types are plain
dataclasses (:class:`WireFit`, :class:`WireResult`, :class:`WireError`,
:class:`WireHello`) with explicit ``to_payload`` / ``from_payload``
converters, so the schema is written down in exactly one place and both the
server and the bundled client speak it through the same code.

Design rules, each of which is property-tested:

* **Version negotiation** — every frame carries ``v``; decoding a frame
  whose version is not in :data:`SUPPORTED_VERSIONS` raises
  :class:`VersionMismatch` (an error frame / HTTP 400 on the wire).  The
  server's hello frame advertises the versions it speaks.
* **Unknown-field tolerance** — decoders ignore unrecognised keys at both
  the envelope and the payload level, so a newer client can add fields
  without breaking an older server (and vice versa).
* **Exact float round-trips** — arrays travel as JSON number lists;
  ``json`` serialises Python floats via ``repr`` (shortest round-trip), so
  measurements in and coefficients out are *bit-exact* across the wire.
  The 1e-10 service equivalence gate therefore holds end to end.
* **Typed errors** — every failure maps onto the PR 6 service-error
  taxonomy via :func:`error_to_frame` / :func:`frame_to_error`: the frame
  carries a stable ``code``, the HTTP status the server answers with, the
  ``transient`` retry hint and enough detail to reconstruct the original
  exception class client-side.
"""

from __future__ import annotations

import json
import queue
from dataclasses import asdict, dataclass, field
from typing import Sequence

import numpy as np

from repro.service.errors import (
    DeadlineExceeded,
    IntakeOverflow,
    RequestShed,
    SchedulerCrashed,
    ServiceError,
)
from repro.service.scheduler import DEFAULT_CONFIG_KEY, FitRequest

__all__ = [
    "FRAME_KINDS",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "Frame",
    "ProtocolError",
    "RemoteError",
    "VersionMismatch",
    "WireError",
    "WireFit",
    "WireHello",
    "WireResult",
    "decode_frame",
    "error_to_frame",
    "frame_to_error",
]

#: Wire schema version this build speaks natively.
PROTOCOL_VERSION = 1

#: Schema versions the decoder accepts (negotiated via the hello frame).
SUPPORTED_VERSIONS: frozenset[int] = frozenset({1})

#: Frame kinds defined by schema v1.  Unknown kinds are rejected (unlike
#: unknown *fields*, which are tolerated): a kind names behaviour, not data.
FRAME_KINDS: frozenset[str] = frozenset(
    {"hello", "fit", "batch_fit", "result", "batch_result", "error"}
)


class ProtocolError(ServiceError):
    """The peer sent bytes that do not decode into a valid frame.

    Maps to HTTP 400 / error code ``bad_request``; never transient (the
    same bytes will fail the same way).
    """


class VersionMismatch(ProtocolError):
    """The frame's schema version is not supported by this endpoint.

    Parameters
    ----------
    requested:
        The version the peer asked for.
    supported:
        The versions this endpoint speaks.
    """

    def __init__(self, requested: object, supported: Sequence[int] = ()) -> None:
        supported = sorted(supported) if supported else sorted(SUPPORTED_VERSIONS)
        super().__init__(
            f"unsupported protocol version {requested!r}; this endpoint speaks {supported}"
        )
        self.requested = requested
        self.supported = supported


class RemoteError(ServiceError):
    """A server-side failure with no more specific client-side class.

    Carries the wire ``code`` and HTTP status so callers can still branch on
    what the server reported even when the taxonomy does not name it.
    """

    def __init__(self, message: str, *, code: str = "internal", http_status: int = 500) -> None:
        super().__init__(message)
        self.code = code
        self.http_status = int(http_status)


# ----------------------------------------------------------------------
# Payload coercion helpers (shared by every from_payload)
# ----------------------------------------------------------------------


def _require(payload: dict, key: str, kind: str) -> object:
    if key not in payload:
        raise ProtocolError(f"{kind} frame is missing required field {key!r}")
    return payload[key]


def _float_list(value: object, name: str) -> list[float]:
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(f"{name} must be a JSON array of numbers")
    out = []
    for entry in value:
        if isinstance(entry, bool) or not isinstance(entry, (int, float)):
            raise ProtocolError(f"{name} must contain only numbers")
        out.append(float(entry))
    return out


def _optional_number(value: object, name: str) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{name} must be a number or null")
    return float(value)


# ----------------------------------------------------------------------
# Payload types
# ----------------------------------------------------------------------


@dataclass
class WireFit:
    """One fit request as it travels over the wire (schema v1).

    Mirrors :class:`~repro.service.scheduler.FitRequest` with wire-safe
    types: arrays are float lists, the seed is restricted to an integer (or
    ``null`` for fresh entropy — such requests never hit the result cache),
    and ``config`` is a string shard key.  ``tag`` is an opaque client
    string echoed verbatim on the result frame (correlation / tracing);
    ``include_diagnostics`` asks the server to materialise and attach the
    fit diagnostics (misfit, roughness) to the response.
    """

    times: list[float]
    measurements: list[float]
    sigma: float | list[float] | None = None
    lam: float | None = None
    lambda_method: str = "gcv"
    lambda_grid: list[float] | None = None
    seed: int | None = 0
    config: str = DEFAULT_CONFIG_KEY
    priority: int = 0
    deadline_ms: float | None = None
    tag: str = ""
    include_diagnostics: bool = False

    def to_payload(self) -> dict:
        """Plain JSON-serialisable dict of this request."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "WireFit":
        """Decode a payload dict, tolerating unknown fields.

        Raises
        ------
        ProtocolError
            On missing required fields or wire-type violations (the typed
            400 path of the HTTP edge).
        """
        if not isinstance(payload, dict):
            raise ProtocolError("fit payload must be a JSON object")
        times = _float_list(_require(payload, "times", "fit"), "times")
        measurements = _float_list(_require(payload, "measurements", "fit"), "measurements")
        if not times:
            raise ProtocolError("times must not be empty")
        if len(times) != len(measurements):
            raise ProtocolError(
                f"times ({len(times)}) and measurements ({len(measurements)}) "
                "must have the same length"
            )
        sigma = payload.get("sigma")
        if sigma is not None:
            if isinstance(sigma, (list, tuple)):
                sigma = _float_list(sigma, "sigma")
                if len(sigma) != len(times):
                    raise ProtocolError("per-point sigma must match the grid length")
            elif isinstance(sigma, bool) or not isinstance(sigma, (int, float)):
                raise ProtocolError("sigma must be a number, an array or null")
            else:
                sigma = float(sigma)
        lambda_grid = payload.get("lambda_grid")
        if lambda_grid is not None:
            lambda_grid = _float_list(lambda_grid, "lambda_grid")
        seed = payload.get("seed", 0)
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            raise ProtocolError("seed must be an integer or null")
        lambda_method = payload.get("lambda_method", "gcv")
        if not isinstance(lambda_method, str):
            raise ProtocolError("lambda_method must be a string")
        config = payload.get("config", DEFAULT_CONFIG_KEY)
        if not isinstance(config, str):
            raise ProtocolError("config must be a string shard key")
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ProtocolError("priority must be an integer")
        tag = payload.get("tag", "")
        if not isinstance(tag, str):
            raise ProtocolError("tag must be a string")
        return cls(
            times=times,
            measurements=measurements,
            sigma=sigma,
            lam=_optional_number(payload.get("lam"), "lam"),
            lambda_method=lambda_method,
            lambda_grid=lambda_grid,
            seed=seed,
            config=config,
            priority=priority,
            deadline_ms=_optional_number(payload.get("deadline_ms"), "deadline_ms"),
            tag=tag,
            include_diagnostics=bool(payload.get("include_diagnostics", False)),
        )

    def to_request(self) -> FitRequest:
        """The scheduler-side :class:`FitRequest` this wire request names."""
        sigma: object = self.sigma
        if isinstance(sigma, list):
            sigma = np.asarray(sigma, dtype=float)
        return FitRequest(
            times=np.asarray(self.times, dtype=float),
            measurements=np.asarray(self.measurements, dtype=float),
            sigma=sigma,
            lam=self.lam,
            lambda_method=self.lambda_method,
            lambda_grid=(
                None if self.lambda_grid is None else np.asarray(self.lambda_grid, dtype=float)
            ),
            rng=self.seed,
            config=self.config,
            priority=self.priority,
            deadline_ms=self.deadline_ms,
        )

    @classmethod
    def from_request(cls, request: FitRequest, **overrides) -> "WireFit":
        """Encode a scheduler request for the wire (loadgen / bench bridge).

        Raises
        ------
        ProtocolError
            When the request's seed has no wire representation (only
            integers and ``None`` travel).
        """
        rng = request.rng
        if rng is not None and not isinstance(rng, (int, np.integer)):
            raise ProtocolError("only integer (or null) seeds are wire-encodable")
        sigma = request.sigma
        if sigma is not None and not np.isscalar(sigma):
            sigma = [float(v) for v in np.asarray(sigma, dtype=float)]
        elif sigma is not None:
            sigma = float(sigma)
        if not isinstance(request.config, str):
            raise ProtocolError("only string config keys are wire-encodable")
        fields = dict(
            times=[float(v) for v in np.asarray(request.times, dtype=float)],
            measurements=[float(v) for v in np.asarray(request.measurements, dtype=float)],
            sigma=sigma,
            lam=None if request.lam is None else float(request.lam),
            lambda_method=request.lambda_method,
            lambda_grid=(
                None
                if request.lambda_grid is None
                else [float(v) for v in np.asarray(request.lambda_grid, dtype=float)]
            ),
            seed=None if rng is None else int(rng),
            config=request.config,
            priority=int(request.priority),
            deadline_ms=(None if request.deadline_ms is None else float(request.deadline_ms)),
        )
        fields.update(overrides)
        return cls(**fields)


@dataclass
class WireResult:
    """One finished fit as it travels back over the wire (schema v1).

    ``coefficients`` and ``lam`` round-trip bit-exactly (JSON ``repr``
    floats), which is what the end-to-end 1e-10 equivalence gate compares.
    ``diagnostics`` is attached only when the request asked for it.
    """

    coefficients: list[float]
    lam: float
    solver_converged: bool = True
    solver_iterations: int = 0
    mean_cycle_time: float = 150.0
    tag: str = ""
    diagnostics: dict | None = None

    def to_payload(self) -> dict:
        """Plain JSON-serialisable dict of this result."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "WireResult":
        """Decode a payload dict, tolerating unknown fields."""
        if not isinstance(payload, dict):
            raise ProtocolError("result payload must be a JSON object")
        lam = _require(payload, "lam", "result")
        if isinstance(lam, bool) or not isinstance(lam, (int, float)):
            raise ProtocolError("lam must be a number")
        diagnostics = payload.get("diagnostics")
        if diagnostics is not None and not isinstance(diagnostics, dict):
            raise ProtocolError("diagnostics must be an object or null")
        tag = payload.get("tag", "")
        if not isinstance(tag, str):
            raise ProtocolError("tag must be a string")
        return cls(
            coefficients=_float_list(
                _require(payload, "coefficients", "result"), "coefficients"
            ),
            lam=float(lam),
            solver_converged=bool(payload.get("solver_converged", True)),
            solver_iterations=int(payload.get("solver_iterations", 0)),
            mean_cycle_time=float(payload.get("mean_cycle_time", 150.0)),
            tag=tag,
            diagnostics=diagnostics,
        )

    @classmethod
    def from_result(cls, result, *, tag: str = "", include_diagnostics: bool = False) -> "WireResult":
        """Encode a :class:`~repro.core.result.DeconvolutionResult`."""
        diagnostics = None
        if include_diagnostics:
            diagnostics = {
                "data_misfit": float(result.data_misfit),
                "roughness": float(result.roughness),
            }
        return cls(
            coefficients=[float(v) for v in np.asarray(result.coefficients, dtype=float)],
            lam=float(result.lam),
            solver_converged=bool(result.solver_converged),
            solver_iterations=int(result.solver_iterations),
            mean_cycle_time=float(result.mean_cycle_time),
            tag=tag,
            diagnostics=diagnostics,
        )

    @property
    def coefficients_array(self) -> np.ndarray:
        """The coefficients as a float array (client-side convenience)."""
        return np.asarray(self.coefficients, dtype=float)


@dataclass
class WireHello:
    """Version-negotiation handshake frame (first frame on a stream)."""

    versions: list[int] = field(default_factory=lambda: sorted(SUPPORTED_VERSIONS))
    server: str = "repro-fit-service"
    max_inflight: int = 0

    def to_payload(self) -> dict:
        """Plain JSON-serialisable dict of this hello."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "WireHello":
        """Decode a payload dict, tolerating unknown fields."""
        if not isinstance(payload, dict):
            raise ProtocolError("hello payload must be a JSON object")
        versions = payload.get("versions", sorted(SUPPORTED_VERSIONS))
        if not isinstance(versions, (list, tuple)) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in versions
        ):
            raise ProtocolError("versions must be an array of integers")
        server = payload.get("server", "")
        if not isinstance(server, str):
            raise ProtocolError("server must be a string")
        return cls(
            versions=list(versions),
            server=server,
            max_inflight=int(payload.get("max_inflight", 0)),
        )


@dataclass
class WireError:
    """Typed error frame mapping the service taxonomy onto the wire.

    Attributes
    ----------
    code:
        Stable machine-readable error code (see :func:`error_to_frame`).
    message:
        Human-readable description (``str(exc)`` server-side).
    http_status:
        The status the HTTP edge answers with for this error class.
    transient:
        The taxonomy's retry hint: ``True`` when retrying may succeed.
    details:
        Class-specific numeric context (e.g. the shed projection), enough
        for :func:`frame_to_error` to rebuild the original exception.
    """

    code: str
    message: str
    http_status: int = 500
    transient: bool = False
    details: dict = field(default_factory=dict)
    tag: str = ""

    def to_payload(self) -> dict:
        """Plain JSON-serialisable dict of this error."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "WireError":
        """Decode a payload dict, tolerating unknown fields."""
        if not isinstance(payload, dict):
            raise ProtocolError("error payload must be a JSON object")
        code = _require(payload, "code", "error")
        if not isinstance(code, str):
            raise ProtocolError("error code must be a string")
        details = payload.get("details", {})
        if not isinstance(details, dict):
            raise ProtocolError("error details must be an object")
        tag = payload.get("tag", "")
        if not isinstance(tag, str):
            raise ProtocolError("tag must be a string")
        return cls(
            code=code,
            message=str(payload.get("message", "")),
            http_status=int(payload.get("http_status", 500)),
            transient=bool(payload.get("transient", False)),
            details=details,
            tag=tag,
        )


# ----------------------------------------------------------------------
# Error taxonomy <-> wire mapping
# ----------------------------------------------------------------------


def error_to_frame(exc: BaseException, *, tag: str = "") -> WireError:
    """Map an exception onto its typed wire error frame.

    The match walks the taxonomy most-specific-first; anything outside the
    taxonomy becomes the generic ``internal`` / 500 frame (message
    preserved, class not).
    """
    transient = bool(getattr(exc, "transient", False))
    if isinstance(exc, VersionMismatch):
        return WireError(
            "version_mismatch",
            str(exc),
            http_status=400,
            transient=transient,
            details={"requested": repr(exc.requested), "supported": list(exc.supported)},
            tag=tag,
        )
    if isinstance(exc, ProtocolError):
        return WireError("bad_request", str(exc), http_status=400, transient=transient, tag=tag)
    if isinstance(exc, RequestShed):
        return WireError(
            "shed",
            str(exc),
            http_status=503,
            transient=True,
            details={
                "projected_wait_ms": exc.projected_wait_ms,
                "deadline_ms": exc.deadline_ms,
            },
            tag=tag,
        )
    if isinstance(exc, DeadlineExceeded):
        return WireError(
            "deadline_exceeded",
            str(exc),
            http_status=504,
            transient=transient,
            details={"waited_ms": exc.waited_ms, "deadline_ms": exc.deadline_ms},
            tag=tag,
        )
    if isinstance(exc, IntakeOverflow):
        return WireError(
            "intake_overflow",
            str(exc),
            http_status=429,
            transient=True,
            details={
                "accepted": len(exc.accepted),
                "rejected": len(exc.rejected),
            },
            tag=tag,
        )
    if isinstance(exc, SchedulerCrashed):
        return WireError("scheduler_crashed", str(exc), http_status=503, transient=transient, tag=tag)
    if isinstance(exc, queue.Full):
        # A plain intake timeout from single-request submit (the typed
        # IntakeOverflow subclass was matched above).
        return WireError("intake_overflow", str(exc) or "intake queue full", http_status=429, transient=True, tag=tag)
    if isinstance(exc, ServiceError):
        return WireError("service_error", str(exc), http_status=500, transient=transient, tag=tag)
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        # Solver-level validation of a structurally well-formed but
        # semantically impossible request: the client's fault, not ours.
        return WireError("bad_request", str(exc), http_status=400, tag=tag)
    return WireError("internal", str(exc), http_status=500, transient=transient, tag=tag)


def frame_to_error(frame: WireError) -> Exception:
    """Rebuild the client-side exception a :class:`WireError` describes.

    The inverse of :func:`error_to_frame` up to the information that
    travels: taxonomy classes come back as the same class with the same
    message and ``transient`` flag; unknown codes come back as
    :class:`RemoteError` carrying the code and status verbatim.
    """
    details = frame.details
    error: Exception
    if frame.code == "shed":
        error = RequestShed(
            float(details.get("projected_wait_ms", 0.0)),
            float(details.get("deadline_ms", 0.0)),
        )
    elif frame.code == "deadline_exceeded":
        error = DeadlineExceeded(
            float(details.get("waited_ms", 0.0)), float(details.get("deadline_ms", 0.0))
        )
    elif frame.code == "intake_overflow":
        error = IntakeOverflow(
            [None] * int(details.get("accepted", 0)),
            [None] * int(details.get("rejected", 0)),
        )
    elif frame.code == "scheduler_crashed":
        error = SchedulerCrashed(frame.message)
    elif frame.code == "version_mismatch":
        supported = details.get("supported", sorted(SUPPORTED_VERSIONS))
        error = VersionMismatch(details.get("requested"), supported)
    elif frame.code == "bad_request":
        error = ProtocolError(frame.message)
    elif frame.code == "service_error":
        error = ServiceError(frame.message)
    else:
        error = RemoteError(frame.message, code=frame.code, http_status=frame.http_status)
    # The retry hint travels with the frame, not the class: stamp it on the
    # instance so client-side RetryPolicy predicates see what the server sent.
    error.transient = bool(frame.transient)
    return error


# ----------------------------------------------------------------------
# Frame envelope
# ----------------------------------------------------------------------


@dataclass
class Frame:
    """One decoded wire frame: envelope plus raw payload dict.

    ``payload`` stays a plain dict at this level; callers decode it with
    the payload type their route expects (``WireFit.from_payload`` etc.).
    """

    kind: str
    payload: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION
    id: str | None = None

    def encode(self) -> str:
        """Serialise to the JSON text that travels on the wire."""
        envelope: dict = {"v": self.version, "kind": self.kind, "payload": self.payload}
        if self.id is not None:
            envelope["id"] = self.id
        return json.dumps(envelope, separators=(",", ":"))


def decode_frame(text: str | bytes) -> Frame:
    """Parse and validate one wire frame.

    Raises
    ------
    VersionMismatch
        When the envelope's ``v`` is not a supported schema version.
    ProtocolError
        On malformed JSON, a non-object envelope, a missing or unknown
        ``kind``, or a non-object payload.  Unknown envelope *fields* are
        tolerated by design.
    """
    try:
        envelope = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(envelope, dict):
        raise ProtocolError("frame must be a JSON object")
    version = envelope.get("v")
    if isinstance(version, bool) or not isinstance(version, int):
        raise ProtocolError("frame is missing the integer schema version field 'v'")
    if version not in SUPPORTED_VERSIONS:
        raise VersionMismatch(version)
    kind = envelope.get("kind")
    if not isinstance(kind, str) or kind not in FRAME_KINDS:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    payload = envelope.get("payload", {})
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    frame_id = envelope.get("id")
    if frame_id is not None and not isinstance(frame_id, str):
        raise ProtocolError("frame id must be a string")
    return Frame(kind=kind, payload=payload, version=version, id=frame_id)
