"""Minimal RFC 6455 WebSocket framing shared by the server and the client.

The container ships no third-party WebSocket stack, so the network edge
carries its own: the handshake accept-key derivation and the byte-level
frame codec (FIN/opcode header, 7/16/64-bit lengths, client-side masking).
Two read paths share the same header logic — an ``asyncio`` one for the
server (:func:`read_message`) and a blocking one for the bundled client
(:func:`read_message_sync`) — both reassembling fragmented messages and
surfacing control frames to the caller.

Scope is deliberately the subset the fit protocol uses: text and close
frames plus ping/pong, no extensions, no per-message compression.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Awaitable, Callable

__all__ = [
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WebSocketProtocolError",
    "accept_key",
    "build_frame",
    "read_message",
    "read_message_sync",
]

#: RFC 6455 handshake GUID appended to the client key before hashing.
_HANDSHAKE_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONTINUATION = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Control opcodes may interleave with fragmented messages but never
#: fragment themselves.
_CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})


class WebSocketProtocolError(RuntimeError):
    """The peer violated RFC 6455 framing rules (connection must close)."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((client_key + _HANDSHAKE_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def build_frame(opcode: int, payload: bytes, *, mask: bool = False, fin: bool = True) -> bytes:
    """Serialise one frame; clients must set ``mask=True`` (RFC 6455 5.1)."""
    header = bytearray()
    header.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = _apply_mask(payload, key)
    return bytes(header) + payload


def _apply_mask(payload: bytes, key: bytes) -> bytes:
    # XOR-mask via int arithmetic: fast enough for the frame sizes the fit
    # protocol moves, with no dependency on numpy here.
    repeated = (key * (len(payload) // 4 + 1))[: len(payload)]
    return (int.from_bytes(payload, "big") ^ int.from_bytes(repeated, "big")).to_bytes(
        len(payload), "big"
    ) if payload else payload


def _decode_header(first: bytes, require_masked: bool) -> tuple[bool, int, bool, int]:
    b0, b1 = first[0], first[1]
    fin = bool(b0 & 0x80)
    if b0 & 0x70:
        raise WebSocketProtocolError("reserved bits set without a negotiated extension")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    if require_masked and not masked:
        raise WebSocketProtocolError("client frames must be masked")
    length = b1 & 0x7F
    if opcode in _CONTROL_OPCODES and (not fin or length > 125):
        raise WebSocketProtocolError("control frames must be unfragmented and short")
    return fin, opcode, masked, length


async def _read_frame(
    read_exactly: Callable[[int], Awaitable[bytes]], *, require_masked: bool, max_size: int
) -> tuple[bool, int, bytes]:
    fin, opcode, masked, length = _decode_header(await read_exactly(2), require_masked)
    if length == 126:
        (length,) = struct.unpack("!H", await read_exactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await read_exactly(8))
    if length > max_size:
        raise WebSocketProtocolError(f"frame of {length} bytes exceeds the {max_size} byte limit")
    key = await read_exactly(4) if masked else b""
    payload = await read_exactly(length) if length else b""
    if masked:
        payload = _apply_mask(payload, key)
    return fin, opcode, payload


async def read_message(
    read_exactly: Callable[[int], Awaitable[bytes]],
    *,
    require_masked: bool = True,
    max_size: int = 16 * 1024 * 1024,
) -> tuple[int, bytes]:
    """Read one complete message (async), reassembling fragments.

    Parameters
    ----------
    read_exactly:
        Coroutine reading exactly ``n`` bytes (``StreamReader.readexactly``).
    require_masked:
        Enforce client-side masking (servers must pass ``True``).
    max_size:
        Reject any single message larger than this many bytes.

    Returns
    -------
    tuple[int, bytes]
        ``(opcode, payload)`` where ``opcode`` is the message's first
        (non-continuation) opcode; control frames return as themselves.
    """
    fin, opcode, payload = await _read_frame(
        read_exactly, require_masked=require_masked, max_size=max_size
    )
    if opcode in _CONTROL_OPCODES or fin:
        if opcode == OP_CONTINUATION:
            raise WebSocketProtocolError("continuation frame without a preceding fragment")
        return opcode, payload
    if opcode == OP_CONTINUATION:
        raise WebSocketProtocolError("continuation frame without a preceding fragment")
    parts = [payload]
    total = len(payload)
    while True:
        fin, next_opcode, payload = await _read_frame(
            read_exactly, require_masked=require_masked, max_size=max_size
        )
        if next_opcode in _CONTROL_OPCODES:
            # Control frames may interleave; the fit protocol only ever
            # needs close/ping mid-message, which the caller handles by
            # reading again — so surface them immediately.
            return next_opcode, payload
        if next_opcode != OP_CONTINUATION:
            raise WebSocketProtocolError("expected a continuation frame")
        total += len(payload)
        if total > max_size:
            raise WebSocketProtocolError(
                f"fragmented message exceeds the {max_size} byte limit"
            )
        parts.append(payload)
        if fin:
            return opcode, b"".join(parts)


def read_message_sync(
    recv_exactly: Callable[[int], bytes],
    *,
    require_masked: bool = False,
    max_size: int = 16 * 1024 * 1024,
) -> tuple[int, bytes]:
    """Blocking twin of :func:`read_message` for the bundled client.

    ``recv_exactly`` must read exactly ``n`` bytes from the socket (raising
    on EOF); servers send unmasked frames, so the default does not require
    masking.
    """

    def read_frame() -> tuple[bool, int, bytes]:
        fin, opcode, masked, length = _decode_header(recv_exactly(2), require_masked)
        if length == 126:
            (length,) = struct.unpack("!H", recv_exactly(2))
        elif length == 127:
            (length,) = struct.unpack("!Q", recv_exactly(8))
        if length > max_size:
            raise WebSocketProtocolError(
                f"frame of {length} bytes exceeds the {max_size} byte limit"
            )
        key = recv_exactly(4) if masked else b""
        payload = recv_exactly(length) if length else b""
        if masked:
            payload = _apply_mask(payload, key)
        return fin, opcode, payload

    fin, opcode, payload = read_frame()
    if opcode in _CONTROL_OPCODES or fin:
        if opcode == OP_CONTINUATION:
            raise WebSocketProtocolError("continuation frame without a preceding fragment")
        return opcode, payload
    if opcode == OP_CONTINUATION:
        raise WebSocketProtocolError("continuation frame without a preceding fragment")
    parts = [payload]
    total = len(payload)
    while True:
        fin, next_opcode, payload = read_frame()
        if next_opcode in _CONTROL_OPCODES:
            return next_opcode, payload
        if next_opcode != OP_CONTINUATION:
            raise WebSocketProtocolError("expected a continuation frame")
        total += len(payload)
        if total > max_size:
            raise WebSocketProtocolError(
                f"fragmented message exceeds the {max_size} byte limit"
            )
        parts.append(payload)
        if fin:
            return opcode, b"".join(parts)
