"""Asyncio HTTP + WebSocket front end over the micro-batching scheduler.

:class:`FitServer` is the network edge of the fit service: a dependency-free
``asyncio`` server speaking HTTP/1.1 (keep-alive) for request/response
traffic and RFC 6455 WebSockets for streaming, with the versioned JSON
frame protocol of :mod:`repro.service.net.protocol` on both.

Routes (schema v1):

* ``POST /v1/fit`` — one fit frame in, one result (or typed error) frame
  out; the HTTP status mirrors the error taxonomy mapping.
* ``POST /v1/fit/batch`` — a batch_fit frame in, a batch_result frame out
  with one result-or-error item per request (intake overflow splits the
  batch per the PR 6 accepted/rejected contract instead of failing it).
* ``GET /v1/stream`` — WebSocket upgrade; fit frames with correlation ids
  stream in, result/error frames stream out as solves finish.
* ``GET /healthz``, ``GET /metrics``, ``GET /pool``, ``GET /backends`` —
  the ops surface (liveness, live ``Telemetry.snapshot()``, pool/session
  stats, kernel-backend registry).

Two properties are load-bearing and regression-tested:

* **Thread bridge** — the scheduler's futures are thread-backed;
  the server submits through a small executor (so intake backpressure
  never blocks the event loop) and awaits them via
  ``asyncio.wrap_future``.  Responses stay bit-identical to in-process
  ``scheduler.submit`` calls.
* **Slow-consumer backpressure** — each stream connection has a bounded
  in-flight window (semaphore) released only after its response bytes are
  written *and drained*.  A stalled reader therefore stops its own
  intake at ``max_inflight`` outstanding fits — server memory stays
  bounded and other connections keep their own pace — instead of growing
  an unbounded output buffer.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
from concurrent.futures import ThreadPoolExecutor

from repro import backends, config
from repro.service.net import ws
from repro.service.net.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Frame,
    ProtocolError,
    VersionMismatch,
    WireFit,
    WireHello,
    WireResult,
    decode_frame,
    error_to_frame,
)
from repro.service.scheduler import MicroBatchScheduler

__all__ = ["FitServer", "ServerHandle", "serve_in_thread"]

#: Reason strings for the handful of HTTP statuses the edge answers with.
_REASONS = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Per-route telemetry counter names (``net_route_<name>``).
_ROUTES = ("fit", "batch_fit", "stream", "healthz", "metrics", "pool", "backends", "index")


class _StreamState:
    """Book-keeping of one WebSocket stream connection.

    Tracks the in-flight window occupancy and its peak so the backpressure
    invariant (``peak_inflight <= window``) is observable from tests and
    the ops surface without racing the event loop.
    """

    def __init__(self, window: int) -> None:
        self.window = window
        self.received = 0
        self.resolved = 0
        self.errors = 0
        self.inflight = 0
        self.peak_inflight = 0
        self.peak_outbox = 0

    def on_submit(self) -> None:
        """Count one accepted frame entering the in-flight window."""
        self.received += 1
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def on_delivered(self, *, error: bool) -> None:
        """Count one frame leaving the window after its reply was written."""
        self.inflight -= 1
        self.resolved += 1
        if error:
            self.errors += 1

    def stats(self) -> dict:
        """Return a snapshot of the stream's window/outbox counters."""
        return {
            "window": self.window,
            "received": self.received,
            "resolved": self.resolved,
            "errors": self.errors,
            "inflight": self.inflight,
            "peak_inflight": self.peak_inflight,
            "peak_outbox": self.peak_outbox,
        }


class FitServer:
    """The asyncio network edge over one :class:`MicroBatchScheduler`.

    Parameters
    ----------
    scheduler:
        The scheduler serving the traffic; its :class:`Telemetry` hub also
        receives the network-edge counters and gauges.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    max_inflight:
        Per-connection in-flight window of the streaming route — the
        slow-consumer backpressure bound.
    submit_timeout_s:
        How long HTTP submits ride scheduler intake backpressure before
        answering 429.
    max_message_bytes:
        Ceiling on one HTTP body / WebSocket message.
    write_buffer_high:
        Transport high-water mark; stream writers ``drain()`` against it so
        OS-level buffering stays bounded per connection.
    """

    def __init__(
        self,
        scheduler: MicroBatchScheduler,
        *,
        host: str = config.DEFAULT_NET_HOST,
        port: int = config.DEFAULT_NET_PORT,
        max_inflight: int = config.DEFAULT_STREAM_WINDOW,
        submit_timeout_s: float = config.DEFAULT_SUBMIT_TIMEOUT_S,
        max_message_bytes: int = config.DEFAULT_MAX_MESSAGE_BYTES,
        write_buffer_high: int = 64 * 1024,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.scheduler = scheduler
        self.telemetry = scheduler.telemetry
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.submit_timeout_s = float(submit_timeout_s)
        self.max_message_bytes = int(max_message_bytes)
        self.write_buffer_high = int(write_buffer_high)
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._streams: dict[int, _StreamState] = {}
        self._stream_ids = 0
        self._peak_stream_inflight = 0
        self._lock = threading.Lock()
        # Submits may block on scheduler intake backpressure; a dedicated
        # executor keeps that off the event loop.  Two threads suffice: the
        # queue behind them preserves arrival order under overload.
        self._submit_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-net-submit"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "FitServer":
        """Bind and start accepting connections; resolves the real port."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI foreground path)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop listening, close open connections, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        tasks = list(self._conn_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._submit_executor.shutdown(wait=True)

    def stats(self) -> dict:
        """Connection/stream gauges and per-stream window book-keeping."""
        with self._lock:
            streams = {key: state.stats() for key, state in self._streams.items()}
        return {
            "host": self.host,
            "port": self.port,
            "max_inflight": self.max_inflight,
            "connections": len(self._writers),
            "streams": streams,
            "peak_stream_inflight": self._peak_stream_inflight,
        }

    # ------------------------------------------------------------------
    # Scheduler bridge
    # ------------------------------------------------------------------

    async def _submit(self, wire: WireFit):
        """Submit one request off-loop and await its thread-backed future."""
        request = wire.to_request()
        future = await self._loop.run_in_executor(
            self._submit_executor,
            lambda: self.scheduler.submit(request, timeout=self.submit_timeout_s),
        )
        return await asyncio.wrap_future(future)

    async def _solve_frame(self, frame_id: str | None, wire: WireFit) -> Frame:
        """One fit in, one result-or-error frame out (never raises)."""
        try:
            result = await self._submit(wire)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self.telemetry.increment("net_errors")
            return Frame(
                "error", error_to_frame(exc, tag=wire.tag).to_payload(), id=frame_id
            )
        payload = WireResult.from_result(
            result, tag=wire.tag, include_diagnostics=wire.include_diagnostics
        ).to_payload()
        return Frame("result", payload, id=frame_id)

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        self.telemetry.adjust_gauge("net_connections", 1)
        try:
            writer.transport.set_write_buffer_limits(high=self.write_buffer_high)
            await self._connection_loop(reader, writer)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            TimeoutError,
            ws.WebSocketProtocolError,
        ):
            pass  # peer went away or spoke garbage; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown
        finally:
            self._conn_tasks.discard(task)
            self._writers.discard(writer)
            self.telemetry.adjust_gauge("net_connections", -1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            request = await self._read_http_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            self.telemetry.increment("net_http_requests")
            if (
                target == "/v1/stream"
                and headers.get("upgrade", "").lower() == "websocket"
            ):
                self.telemetry.increment("net_route_stream")
                await self._handle_stream(reader, writer, headers)
                return
            status, payload = await self._dispatch(method, target, body)
            if status >= 400:
                self.telemetry.increment("net_http_errors")
            keep_alive = headers.get("connection", "").lower() != "close"
            await self._write_http_response(writer, status, payload, keep_alive=keep_alive)
            if not keep_alive:
                return

    async def _read_http_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes] | None:
        try:
            line = await reader.readline()
        except ValueError:  # line longer than the stream limit
            return None
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for _ in range(256):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            return None
        body = b""
        length = headers.get("content-length")
        if length is not None:
            length = int(length)
            if length > self.max_message_bytes:
                return None
            body = await reader.readexactly(length)
        return method.upper(), target, headers, body

    async def _write_http_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: str,
        *,
        keep_alive: bool = True,
    ) -> None:
        body = payload.encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, str]:
        """Route one plain HTTP request to its handler (never raises)."""
        target = target.split("?", 1)[0]
        try:
            if target == "/v1/fit":
                if method != "POST":
                    return 405, self._error_payload(ProtocolError("POST required"), 405)
                self.telemetry.increment("net_route_fit")
                return await self._handle_fit(body)
            if target == "/v1/fit/batch":
                if method != "POST":
                    return 405, self._error_payload(ProtocolError("POST required"), 405)
                self.telemetry.increment("net_route_batch_fit")
                return await self._handle_batch(body)
            if target == "/healthz":
                self.telemetry.increment("net_route_healthz")
                return self._handle_healthz()
            if target == "/metrics":
                self.telemetry.increment("net_route_metrics")
                return 200, json.dumps(
                    dict(self.telemetry.snapshot(), server=self.stats())
                )
            if target == "/pool":
                self.telemetry.increment("net_route_pool")
                stats = self.scheduler.stats()
                stats.pop("telemetry", None)
                return 200, json.dumps(stats, default=repr)
            if target == "/backends":
                self.telemetry.increment("net_route_backends")
                return 200, json.dumps(
                    {
                        "backends": backends.backend_table(),
                        "active": backends.active_backend().name,
                        "requested": backends.requested_backend(),
                    }
                )
            if target == "/":
                self.telemetry.increment("net_route_index")
                return 200, json.dumps(
                    {
                        "service": "repro-fit-service",
                        "protocol_versions": sorted(SUPPORTED_VERSIONS),
                        "routes": [
                            "POST /v1/fit",
                            "POST /v1/fit/batch",
                            "GET /v1/stream (websocket)",
                            "GET /healthz",
                            "GET /metrics",
                            "GET /pool",
                            "GET /backends",
                        ],
                    }
                )
            return 404, self._error_payload(
                ProtocolError(f"no route {target!r}"), 404
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self.telemetry.increment("net_errors")
            frame = error_to_frame(exc)
            return frame.http_status, Frame("error", frame.to_payload()).encode()

    @staticmethod
    def _error_payload(exc: Exception, status: int | None = None) -> str:
        frame = error_to_frame(exc)
        if status is not None:
            frame.http_status = status
        return Frame("error", frame.to_payload()).encode()

    async def _handle_fit(self, body: bytes) -> tuple[int, str]:
        frame = decode_frame(body)
        if frame.kind != "fit":
            raise ProtocolError(f"expected a fit frame, got {frame.kind!r}")
        wire = WireFit.from_payload(frame.payload)
        response = await self._solve_frame(frame.id, wire)
        if response.kind == "error":
            return int(response.payload.get("http_status", 500)), response.encode()
        return 200, response.encode()

    async def _handle_batch(self, body: bytes) -> tuple[int, str]:
        frame = decode_frame(body)
        if frame.kind != "batch_fit":
            raise ProtocolError(f"expected a batch_fit frame, got {frame.kind!r}")
        entries = frame.payload.get("requests")
        if not isinstance(entries, list):
            raise ProtocolError("batch_fit payload must carry a 'requests' array")
        wires = [WireFit.from_payload(entry) for entry in entries]
        requests = [wire.to_request() for wire in wires]

        def submit_many():
            return self.scheduler.submit_many(requests, timeout=self.submit_timeout_s)

        overflow = None
        try:
            futures = await self._loop.run_in_executor(self._submit_executor, submit_many)
        except queue.Full as exc:  # IntakeOverflow carries the split
            overflow = exc
            rejected = {id(request) for request in getattr(exc, "rejected", [])}
            accepted = iter(getattr(exc, "accepted", []))
            futures = [
                None if id(request) in rejected else next(accepted)
                for request in requests
            ]
        items = []
        for wire, future in zip(wires, futures):
            if future is None:
                error = error_to_frame(overflow, tag=wire.tag)
                items.append({"kind": "error", "payload": error.to_payload()})
                continue
            try:
                result = await asyncio.wrap_future(future)
            except BaseException as exc:
                self.telemetry.increment("net_errors")
                items.append(
                    {"kind": "error", "payload": error_to_frame(exc, tag=wire.tag).to_payload()}
                )
                continue
            items.append(
                {
                    "kind": "result",
                    "payload": WireResult.from_result(
                        result, tag=wire.tag, include_diagnostics=wire.include_diagnostics
                    ).to_payload(),
                }
            )
        status = 429 if overflow is not None else 200
        return status, Frame("batch_result", {"results": items}, id=frame.id).encode()

    def _handle_healthz(self) -> tuple[int, str]:
        scheduler = self.scheduler
        healthy = not scheduler.closed and not scheduler.crashed
        payload = {
            "status": "ok" if healthy else "down",
            "crashed": scheduler.crashed,
            "closed": scheduler.closed,
            "queued": scheduler.queue_depth(),
            "outstanding": scheduler.outstanding(),
            "protocol_versions": sorted(SUPPORTED_VERSIONS),
        }
        return (200 if healthy else 503), json.dumps(payload)

    # ------------------------------------------------------------------
    # WebSocket streaming layer
    # ------------------------------------------------------------------

    async def _handle_stream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, headers: dict
    ) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._write_http_response(
                writer,
                400,
                self._error_payload(ProtocolError("missing Sec-WebSocket-Key")),
                keep_alive=False,
            )
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {ws.accept_key(key)}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        state = _StreamState(self.max_inflight)
        with self._lock:
            self._stream_ids += 1
            stream_id = self._stream_ids
            self._streams[stream_id] = state
        window = asyncio.Semaphore(self.max_inflight)
        # The outbox is bounded by the window: a frame enters only after a
        # window slot was taken, so qsize can never exceed max_inflight (+
        # control frames, which are never window-gated but are tiny).
        outbox: asyncio.Queue = asyncio.Queue()
        tasks: set[asyncio.Task] = set()
        writer_task = asyncio.create_task(
            self._stream_writer(writer, outbox, window, state)
        )
        try:
            await outbox.put((ws.OP_TEXT, self._hello_frame().encode().encode(), None))
            await self._stream_reader_loop(reader, outbox, window, state, tasks)
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            # Flush frames already queued (error frames, the close echo)
            # before tearing the writer down: a peer that spoke a bad
            # version must still receive the typed error it was sent.
            await outbox.put((None, b"", None))
            try:
                await asyncio.wait_for(asyncio.shield(writer_task), timeout=5.0)
            except BaseException:  # timeout, dead peer, or our own cancel
                writer_task.cancel()
                await asyncio.gather(writer_task, return_exceptions=True)
            # Solves cancelled (or responses never drained) still hold
            # in-flight accounting; settle the gauge for this connection.
            if state.inflight:
                self.telemetry.adjust_gauge("net_ws_inflight", -state.inflight)
            with self._lock:
                self._peak_stream_inflight = max(
                    self._peak_stream_inflight, state.peak_inflight
                )
                self._streams.pop(stream_id, None)

    def _hello_frame(self) -> Frame:
        return Frame(
            "hello",
            WireHello(max_inflight=self.max_inflight).to_payload(),
            version=PROTOCOL_VERSION,
        )

    async def _stream_reader_loop(
        self,
        reader: asyncio.StreamReader,
        outbox: asyncio.Queue,
        window: asyncio.Semaphore,
        state: _StreamState,
        tasks: set[asyncio.Task],
    ) -> None:
        while True:
            opcode, payload = await ws.read_message(
                reader.readexactly, require_masked=True, max_size=self.max_message_bytes
            )
            if opcode == ws.OP_CLOSE:
                await outbox.put((ws.OP_CLOSE, payload[:2], None))
                return
            if opcode == ws.OP_PING:
                await outbox.put((ws.OP_PONG, payload, None))
                continue
            if opcode == ws.OP_PONG:
                continue
            self.telemetry.increment("net_ws_messages")
            try:
                frame = decode_frame(payload)
            except VersionMismatch as exc:
                await self._stream_error(outbox, None, exc, state)
                await outbox.put((ws.OP_CLOSE, b"\x03\xea", None))  # 1002
                return
            except ProtocolError as exc:
                await self._stream_error(outbox, None, exc, state)
                continue
            if frame.kind == "hello":
                # Client-side negotiation: decode validated the version.
                continue
            if frame.kind != "fit":
                await self._stream_error(
                    outbox,
                    frame.id,
                    ProtocolError(f"streams accept fit frames, got {frame.kind!r}"),
                    state,
                )
                continue
            try:
                wire = WireFit.from_payload(frame.payload)
            except ProtocolError as exc:
                await self._stream_error(outbox, frame.id, exc, state)
                continue
            # Backpressure point: no new solve starts while the window is
            # exhausted, and the window only refills as responses DRAIN to
            # the peer.  A stalled consumer stops being read right here.
            await window.acquire()
            state.on_submit()
            self.telemetry.adjust_gauge("net_ws_inflight", 1)
            task = asyncio.create_task(
                self._stream_solve(frame.id, wire, outbox, state)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)

    async def _stream_error(
        self,
        outbox: asyncio.Queue,
        frame_id: str | None,
        exc: Exception,
        state: _StreamState,
    ) -> None:
        state.errors += 1
        self.telemetry.increment("net_errors")
        encoded = Frame("error", error_to_frame(exc).to_payload(), id=frame_id).encode()
        await outbox.put((ws.OP_TEXT, encoded.encode(), None))

    async def _stream_solve(
        self, frame_id: str | None, wire: WireFit, outbox: asyncio.Queue, state: _StreamState
    ) -> None:
        response = await self._solve_frame(frame_id, wire)
        state.peak_outbox = max(state.peak_outbox, outbox.qsize() + 1)
        await outbox.put((ws.OP_TEXT, response.encode().encode(), response.kind == "error"))

    async def _stream_writer(
        self,
        writer: asyncio.StreamWriter,
        outbox: asyncio.Queue,
        window: asyncio.Semaphore,
        state: _StreamState,
    ) -> None:
        while True:
            opcode, payload, is_error = await outbox.get()
            if opcode is None:  # teardown sentinel: the outbox is flushed
                return
            writer.write(ws.build_frame(opcode, payload))
            try:
                await writer.drain()
            finally:
                if is_error is not None:  # a window-gated result/error frame
                    # Only after the response bytes drained does the window
                    # refill — the slow-consumer backpressure contract.
                    state.on_delivered(error=is_error)
                    self.telemetry.adjust_gauge("net_ws_inflight", -1)
                    self.telemetry.increment("net_ws_results")
                    window.release()
            if opcode == ws.OP_CLOSE:
                return


# ----------------------------------------------------------------------
# Thread-hosted server (CLI and tests)
# ----------------------------------------------------------------------


class ServerHandle:
    """A :class:`FitServer` running on its own event-loop thread.

    The blocking world's view of the server: tests and the CLI bench drive
    real sockets against :attr:`port` while the event loop runs on the
    named daemon thread ``repro-net-server``.  :meth:`close` is idempotent
    and joins the thread, so fixtures can leak-check by thread name.
    """

    def __init__(
        self, server: FitServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._closed = False

    @property
    def host(self) -> str:
        """Bind host of the running server."""
        return self.server.host

    @property
    def port(self) -> int:
        """The actual bound TCP port (resolved for ephemeral binds)."""
        return self.server.port

    def stats(self) -> dict:
        """Live :meth:`FitServer.stats` (safe to read cross-thread)."""
        return self.server.stats()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the server, close connections and join the loop thread."""
        if self._closed:
            return
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def serve_in_thread(
    scheduler: MicroBatchScheduler,
    *,
    host: str = config.DEFAULT_NET_HOST,
    port: int = 0,
    ready_timeout: float = 10.0,
    **server_kwargs,
) -> ServerHandle:
    """Start a :class:`FitServer` on a dedicated event-loop thread.

    Parameters
    ----------
    scheduler:
        The scheduler to serve (its lifecycle stays the caller's).
    host, port:
        Bind address; the default ``port=0`` takes an ephemeral port.
    ready_timeout:
        Seconds to wait for the listening socket before giving up.
    **server_kwargs:
        Forwarded to :class:`FitServer`.

    Returns
    -------
    ServerHandle
        Live handle; close it (or use it as a context manager) to stop the
        server and join its thread.
    """
    server = FitServer(scheduler, host=host, port=port, **server_kwargs)
    started = threading.Event()
    boot_error: list[BaseException] = []
    loop_box: list[asyncio.AbstractEventLoop] = []

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_box.append(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # bind failure etc.
            boot_error.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.aclose())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=run, name="repro-net-server", daemon=True)
    thread.start()
    if not started.wait(ready_timeout):
        raise RuntimeError("the server thread did not come up in time")
    if boot_error:
        thread.join(1.0)
        raise boot_error[0]
    return ServerHandle(server, loop_box[0], thread)
