"""Micro-batching scheduler: many producers, coalesced multi-RHS solves.

:class:`MicroBatchScheduler` is the concurrency layer of the fit service.
Producer threads call :meth:`MicroBatchScheduler.submit` with a
:class:`FitRequest` and immediately get a
:class:`concurrent.futures.Future`; a dedicated batcher thread pulls
requests off a bounded queue (the bound is the backpressure: producers block
once the service is saturated), coalesces them by compatibility key — same
configuration shard, measurement grid and fit options — within a
``max_batch`` / ``max_wait_ms`` window, and dispatches each coalesced batch
to a worker pool.  Workers push each batch through the shard deconvolver's
``fit_many(engine="batch")`` against the shard session's warm caches —
one stacked multi-RHS solve per distinct lambda, one shared GCV scoring
pass for the whole batch — so the marginal cost per request is one gradient
plus one row of a batched solve, while every response stays bit-identical
(to 1e-10) to a direct :meth:`~repro.core.deconvolver.Deconvolver.fit`
call (the session layer's tested guarantee).

Results of finished solves are recorded in a content-addressed
:class:`~repro.service.cache.ResultCache`; repeated requests short-circuit
at submit time without ever entering the queue.  Counters and latency /
batch-size histograms land in a
:class:`~repro.service.telemetry.Telemetry` hub.  ``shutdown(drain=True)``
(also the context-manager exit) completes everything queued before
stopping; ``drain=False`` cancels whatever has not been dispatched yet.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro import config
from repro.core.session import fit_options_bucket
from repro.service.cache import ResultCache, request_fingerprint, seed_fingerprint
from repro.service.pool import SessionPool
from repro.service.telemetry import Telemetry
from repro.utils.rng import SeedLike

__all__ = ["DEFAULT_CONFIG_KEY", "FitRequest", "MicroBatchScheduler"]

#: Pool shard addressed by requests that do not name a configuration.
DEFAULT_CONFIG_KEY = "default"

#: Queue sentinel asking the batcher thread to flush and exit.
_STOP = object()


@dataclass
class FitRequest:
    """One deconvolution request addressed to a pool shard.

    Parameters mirror :meth:`repro.core.deconvolver.Deconvolver.fit` plus
    ``config``, the :class:`~repro.service.pool.SessionPool` shard key naming
    the deconvolver configuration that should serve the request.
    """

    times: np.ndarray
    measurements: np.ndarray
    sigma: np.ndarray | float | None = None
    lam: float | None = None
    lambda_method: str = "gcv"
    lambda_grid: np.ndarray | None = None
    rng: SeedLike = 0
    config: Hashable = DEFAULT_CONFIG_KEY

    def batch_key(self) -> tuple:
        """Coalescing key: requests sharing it solve as one stacked batch.

        The session layer's :func:`~repro.core.session.fit_options_bucket`
        (fixed-lambda fits on one (grid, sigma) coalesce regardless of their
        lambda values, selection fits also group by method and candidate
        grid) prefixed with the configuration shard and the seed content
        (:func:`~repro.service.cache.seed_fingerprint` — the seed steers
        kernel construction and CV fold assignment, which a batch shares;
        ``None`` seeds never coalesce).
        """
        return (
            self.config,
            seed_fingerprint(self.rng),
        ) + fit_options_bucket(
            self.times, self.sigma, self.lam, self.lambda_method, self.lambda_grid
        )

    def fingerprint(self) -> str:
        """Content hash for the result cache (see :func:`request_fingerprint`)."""
        return request_fingerprint(
            self.config,
            self.times,
            self.measurements,
            sigma=self.sigma,
            lam=self.lam,
            lambda_method=self.lambda_method,
            lambda_grid=self.lambda_grid,
            rng=self.rng,
        )


@dataclass
class _QueuedItem:
    """A request in flight: the future to resolve and its timing/cache keys."""

    request: FitRequest
    future: Future
    enqueued_at: float
    cache_key: str | None = field(default=None)


class MicroBatchScheduler:
    """Coalesce concurrent fit requests into stacked multi-RHS solves.

    Parameters
    ----------
    pool:
        The :class:`~repro.service.pool.SessionPool` whose shards serve the
        requests.
    max_batch:
        Dispatch a coalesced batch as soon as it holds this many requests.
    max_wait_ms:
        Dispatch a partial batch once its oldest request has waited this
        long — the latency bound of the micro-batching window.
    max_queue:
        Bound of the intake queue; :meth:`submit` blocks once it is full
        (backpressure) until the batcher catches up.
    workers:
        Size of the solve worker pool; defaults to
        :func:`repro.config.default_pool_size` for an unbounded task count.
        Batches for one shard serialize on the shard lock; workers buy
        parallelism across shards.
    cache:
        Result cache; defaults to a fresh 1024-entry
        :class:`~repro.service.cache.ResultCache`.  Pass ``ResultCache(0)``
        to disable caching.
    telemetry:
        Metrics hub; defaults to a fresh
        :class:`~repro.service.telemetry.Telemetry`.
    """

    def __init__(
        self,
        pool: SessionPool,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        workers: int | None = None,
        cache: ResultCache | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.pool = pool
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_ms) / 1e3
        self.cache = cache if cache is not None else ResultCache()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.workers = (
            int(workers) if workers is not None else config.default_pool_size(None)
        )
        self._queue: queue.Queue = queue.Queue(maxsize=int(max_queue))
        self._accept_lock = threading.Lock()
        self._closed = False
        self._discard = False
        self._outstanding = 0
        self._outstanding_cond = threading.Condition()
        # Batches are executed by per-shard runners: one worker drains one
        # shard's batch queue end to end (holding the pool lease once), so
        # consecutive batches of a shard never pay a thread handoff or fight
        # over the shard lock.
        self._shard_lock = threading.Lock()
        self._shard_queues: dict[Hashable, list] = {}
        self._shard_active: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service-worker"
        )
        self._batcher = threading.Thread(
            target=self._batch_loop, name="repro-service-batcher", daemon=True
        )
        self._batcher.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, request: FitRequest, *, timeout: float | None = None) -> Future:
        """Queue one request; returns a future resolving to its result.

        Cache hits resolve immediately without entering the queue.  When the
        intake queue is full the call blocks (backpressure) until space
        frees, or raises :class:`queue.Full` after ``timeout`` seconds if a
        timeout is given.  Raises :class:`RuntimeError` after
        :meth:`shutdown` (for cached and uncached content alike).
        """
        if self._closed:
            raise RuntimeError("scheduler has been shut down")
        future: Future = Future()
        cache_key = request.fingerprint() if self.cache.max_entries > 0 else None
        if cache_key is not None:
            cached = self.cache.get(cache_key)
            if cached is not None:
                self.telemetry.record_batch(
                    {"requests": 1, "cache_hits": 1, "completed": 1},
                    {"latency_seconds": [0.0]},
                )
                future.set_result(cached)
                return future
        item = _QueuedItem(request, future, time.perf_counter(), cache_key)
        with self._accept_lock:
            if self._closed:
                raise RuntimeError("scheduler has been shut down")
            self._queue.put(item, timeout=timeout)
            with self._outstanding_cond:
                self._outstanding += 1
        self.telemetry.increment("requests")
        return future

    def submit_many(
        self, requests: Iterable[FitRequest], *, timeout: float | None = None
    ) -> list[Future]:
        """Bulk intake: queue many requests with one lock round-trip.

        Semantically ``[submit(r) for r in requests]`` (cache hits resolve
        immediately, the rest enter the batching queue in order) but the
        accept lock and telemetry are touched once for the whole list, which
        matters for bulk producers feeding hundreds of requests at a time.
        If a ``timeout`` is given and the queue stays full,
        :class:`queue.Full` propagates; requests enqueued before the
        timeout are still processed (and cached), the rest are dropped.
        """
        if self._closed:
            raise RuntimeError("scheduler has been shut down")
        futures: list[Future] = []
        hits = 0
        items: list[_QueuedItem] = []
        now = time.perf_counter()
        for request in requests:
            future = Future()
            cache_key = request.fingerprint() if self.cache.max_entries > 0 else None
            cached = self.cache.get(cache_key) if cache_key is not None else None
            if cached is not None:
                hits += 1
                future.set_result(cached)
            else:
                items.append(_QueuedItem(request, future, now, cache_key))
            futures.append(future)
        with self._accept_lock:
            if self._closed:
                raise RuntimeError("scheduler has been shut down")
            for item in items:
                # Count each item as it is accepted: if a put times out
                # mid-batch, the already-enqueued items stay correctly
                # accounted and drain()/shutdown() still converge.
                self._queue.put(item, timeout=timeout)
                with self._outstanding_cond:
                    self._outstanding += 1
        self.telemetry.record_batch(
            {"requests": len(futures), "cache_hits": hits, "completed": hits},
            {"latency_seconds": [0.0] * hits},
        )
        return futures

    def map(self, requests: Iterable[FitRequest]) -> list:
        """Submit ``requests`` and block for their results, in input order."""
        futures = self.submit_many(requests)
        return [future.result() for future in futures]

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted request has resolved.

        Returns ``True`` when the service went idle, ``False`` on timeout.
        """
        with self._outstanding_cond:
            return self._outstanding_cond.wait_for(
                lambda: self._outstanding == 0, timeout=timeout
            )

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        With ``drain=True`` (default) everything already accepted is solved
        before the threads stop; with ``drain=False`` requests not yet
        dispatched to a worker are cancelled (their futures end in the
        cancelled state).  Idempotent.
        """
        with self._accept_lock:
            if self._closed:
                return
            self._closed = True
            self._discard = not drain
        self._queue.put(_STOP)
        self._batcher.join(timeout)
        if drain:
            self.drain(timeout)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def stats(self) -> dict:
        """Queue depth, in-flight count, knobs, and pool/cache/telemetry stats."""
        with self._outstanding_cond:
            outstanding = self._outstanding
        return {
            "queued": self._queue.qsize(),
            "outstanding": outstanding,
            "workers": self.workers,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_seconds * 1e3,
            "closed": self._closed,
            "pool": self.pool.stats(),
            "cache": self.cache.stats(),
            "telemetry": self.telemetry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Batcher thread
    # ------------------------------------------------------------------

    def _batch_loop(self) -> None:
        pending: dict[tuple, list[_QueuedItem]] = {}
        deadlines: dict[tuple, float] = {}

        def dispatch(key: tuple) -> None:
            items = pending.pop(key)
            deadlines.pop(key, None)
            shard = key[0]
            with self._shard_lock:
                self._shard_queues.setdefault(shard, []).append(items)
                if shard in self._shard_active:
                    return
                self._shard_active.add(shard)
            self._executor.submit(self._run_shard, shard)

        def add(item: _QueuedItem) -> None:
            key = item.request.batch_key()
            bucket = pending.setdefault(key, [])
            if not bucket:
                deadlines[key] = time.perf_counter() + self.max_wait_seconds
            bucket.append(item)
            if len(bucket) >= self.max_batch:
                dispatch(key)

        try:
            while True:
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - time.perf_counter())
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    item = None
                if item is _STOP:
                    # FIFO guarantees every accepted item precedes the stop
                    # sentinel; drain whatever is left, then flush or cancel.
                    while True:
                        try:
                            extra = self._queue.get_nowait()
                        except queue.Empty:
                            break
                        if extra is not _STOP:
                            add(extra)
                    for key in list(pending):
                        if self._discard:
                            for stale in pending.pop(key):
                                self._cancel(stale)
                        else:
                            dispatch(key)
                    return
                if item is not None:
                    add(item)
                now = time.perf_counter()
                for key in [k for k, d in deadlines.items() if d <= now]:
                    dispatch(key)
        except Exception as exc:  # pragma: no cover - defensive: fail loudly
            for items in pending.values():
                for item in items:
                    self._fail(item, exc)
            raise

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _run_shard(self, shard: Hashable) -> None:
        """Drain one shard's dispatched batches on a single worker thread.

        The pool lease (and with it the shard lock) is taken once for the
        whole drain, so back-to-back batches of one configuration never pay
        a thread handoff; the runner deactivates atomically with the
        emptiness check, and the batcher starts a new runner when it
        dispatches into an inactive shard.
        """
        try:
            with self.pool.lease(shard) as entry:
                while True:
                    with self._shard_lock:
                        batches = self._shard_queues.get(shard)
                        if not batches:
                            self._shard_active.discard(shard)
                            return
                        taken, batches[:] = batches[:], []
                    # Adaptive re-batching: everything that queued up while
                    # the previous solve ran is taken in one gulp and
                    # re-merged by batch key, so sustained load coalesces
                    # into maximal batches no matter how the time windows
                    # fell at intake.
                    merged: dict[tuple, list[_QueuedItem]] = {}
                    for items in taken:
                        merged.setdefault(items[0].request.batch_key(), []).extend(items)
                    for items in merged.values():
                        self._run_batch(entry, items)
        except Exception as exc:  # e.g. the pool factory failed
            while True:
                with self._shard_lock:
                    batches = self._shard_queues.get(shard)
                    if not batches:
                        self._shard_active.discard(shard)
                        return
                    items = batches.pop(0)
                for item in items:
                    self._fail(item, exc)

    def _run_batch(self, entry, items: Sequence[_QueuedItem]) -> None:
        # Late cache pass + in-batch dedup: an earlier batch may have solved
        # identical content since these items were queued, and bit-exact
        # repeats inside one batch only need a single solve row.
        ready: list[tuple[_QueuedItem, object]] = []
        to_solve: list[_QueuedItem] = []
        leaders: dict[str, int] = {}
        duplicates: dict[int, list[_QueuedItem]] = {}
        for item in items:
            key = item.cache_key
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    ready.append((item, cached))
                    continue
                leader = leaders.get(key)
                if leader is not None:
                    duplicates.setdefault(leader, []).append(item)
                    continue
                leaders[key] = len(to_solve)
            to_solve.append(item)
        deduplicated = len(items) - len(ready) - len(to_solve)
        results: list = []
        if to_solve:
            try:
                with entry.lock:
                    first = to_solve[0].request
                    matrix = np.column_stack(
                        [item.request.measurements for item in to_solve]
                    )
                    # All items share a batch key, so this is exactly one
                    # session bucket: dispatch it as a single fit_many call
                    # (one stacked multi-RHS solve per distinct lambda)
                    # against the shard's warm session caches.
                    results = entry.deconvolver.fit_many(
                        first.times,
                        matrix,
                        sigma=first.sigma,
                        lam=None
                        if first.lam is None
                        else [item.request.lam for item in to_solve],
                        lambda_method=first.lambda_method,
                        lambda_grid=first.lambda_grid,
                        rng=first.rng,
                        engine="batch",
                    )
            except Exception as exc:
                now = time.perf_counter()
                self.telemetry.record_batch(
                    {
                        "batches": 1,
                        "batched_requests": len(items),
                        "cache_hits": len(ready),
                        "deduplicated": deduplicated,
                        "completed": len(ready),
                    },
                    {
                        "batch_size": [len(items)],
                        "latency_seconds": [now - item.enqueued_at for item, _ in ready],
                    },
                )
                for index, item in enumerate(to_solve):
                    self._fail(item, exc)
                    for duplicate in duplicates.get(index, []):
                        self._fail(duplicate, exc)
                for item, result in ready:
                    self._resolve(item, result)
                return
        now = time.perf_counter()
        latencies = []
        resolved = 0
        for index, (item, result) in enumerate(zip(to_solve, results)):
            if item.cache_key is not None:
                # A cached result must not pin its shard session's
                # factorization caches past pool eviction; releasing keeps
                # the lazy diagnostics and costs only attribute rebinds.
                self.cache.put(item.cache_key, result.release_backing_caches())
            latencies.append(now - item.enqueued_at)
            self._resolve(item, result)
            resolved += 1
            for duplicate in duplicates.get(index, []):
                latencies.append(now - duplicate.enqueued_at)
                self._resolve(duplicate, result)
                resolved += 1
        for item, result in ready:
            latencies.append(now - item.enqueued_at)
            self._resolve(item, result)
            resolved += 1
        self.telemetry.record_batch(
            {
                "batches": 1,
                "batched_requests": len(items),
                "cache_hits": len(ready),
                "deduplicated": deduplicated,
                "completed": resolved,
            },
            {"batch_size": [len(items)], "latency_seconds": latencies},
        )

    def _resolve(self, item: _QueuedItem, result: object) -> None:
        try:
            item.future.set_result(result)
        except InvalidStateError:  # future was cancelled by the caller
            pass
        self._settled()

    def _fail(self, item: _QueuedItem, exc: BaseException) -> None:
        self.telemetry.increment("errors")
        try:
            item.future.set_exception(exc)
        except InvalidStateError:
            pass
        self._settled()

    def _cancel(self, item: _QueuedItem) -> None:
        self.telemetry.increment("cancelled")
        item.future.cancel()
        self._settled()

    def _settled(self) -> None:
        with self._outstanding_cond:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._outstanding_cond.notify_all()
