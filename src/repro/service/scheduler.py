"""Micro-batching scheduler: many producers, coalesced multi-RHS solves.

:class:`MicroBatchScheduler` is the concurrency layer of the fit service.
Producer threads call :meth:`MicroBatchScheduler.submit` with a
:class:`FitRequest` and immediately get a
:class:`concurrent.futures.Future`; a dedicated batcher thread pulls
requests off a bounded queue (the bound is the backpressure: producers block
once the service is saturated), coalesces them by compatibility key — same
configuration shard, measurement grid and fit options — within a
``max_batch`` / ``max_wait_ms`` window, and dispatches each coalesced batch
to a worker pool.  Workers push each batch through the shard deconvolver's
``fit_many(engine="batch")`` against the shard session's warm caches —
one stacked multi-RHS solve per distinct lambda, one shared GCV scoring
pass for the whole batch — so the marginal cost per request is one gradient
plus one row of a batched solve, while every response stays bit-identical
(to 1e-10) to a direct :meth:`~repro.core.deconvolver.Deconvolver.fit`
call (the session layer's tested guarantee).

Batches execute through one of two *runners*.  The default thread runner
solves in-process on a thread pool — zero setup cost, but GIL-bound: one hot
shard tops out at roughly one core.  ``runner="process"`` (or
``REPRO_RUNNER=process``) routes coalesced batches to a
:class:`~repro.service.workers.ShardWorkerPool` of pinned worker processes
with shared-memory handoff, so concurrent batches — even of a single hot
shard — solve on separate cores against per-worker session replicas.  The
breaker/retry/degraded machinery stays parent-side and identical across
runners; a dead worker is just one more transient failure.

The scheduler is SLO-aware and failure-contained:

* Requests carry a ``priority`` and an optional ``deadline_ms``.  Pending
  batches dispatch in priority order, admission control *sheds* requests
  whose projected queue wait already exceeds their deadline budget
  (:class:`~repro.service.errors.RequestShed`), requests that age out in
  the queue are dropped with
  :class:`~repro.service.errors.DeadlineExceeded` instead of solving stale
  work, and the batching window adapts down from observed solve latency
  (:class:`~repro.service.robustness.AdaptiveWindow`) so waiting never
  dominates fast solves.
* Transient solve and session-build failures are retried under a
  :class:`~repro.service.robustness.RetryPolicy`; repeated failures trip a
  per-shard :class:`~repro.service.robustness.CircuitBreaker` that routes
  traffic to a *degraded* serial path (one plain ``fit`` per request —
  bit-exact, just slower) until a half-open probe heals the fast path.
* A supervisor guarantees that no future ever hangs: if the batcher thread
  dies, every queued and pending future fails with
  :class:`~repro.service.errors.SchedulerCrashed` and later submits raise
  it immediately; if a runner dies mid-drain its batches fail with the
  causing error.
* An optional :class:`~repro.service.faults.FaultPlan` arms seeded fault
  injection at the solve boundary (solver errors, slow solves, cache
  evictions) for the chaos scenario suite.

Results of finished solves are recorded in a content-addressed
:class:`~repro.service.cache.ResultCache`; repeated requests short-circuit
at submit time without ever entering the queue.  Counters and latency /
batch-size histograms land in a
:class:`~repro.service.telemetry.Telemetry` hub.  ``shutdown(drain=True)``
(also the context-manager exit) completes everything queued before
stopping; ``drain=False`` cancels whatever has not been dispatched yet.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro import config
from repro.core.session import fit_options_bucket
from repro.service.cache import ResultCache, request_fingerprint, seed_fingerprint
from repro.service.errors import (
    DeadlineExceeded,
    IntakeOverflow,
    RequestShed,
    SchedulerCrashed,
)
from repro.service.faults import FaultPlan
from repro.service.pool import SessionPool
from repro.service.robustness import AdaptiveWindow, CircuitBreaker, RetryPolicy
from repro.service.telemetry import Telemetry
from repro.service.workers import ShardWorkerPool, ensure_picklable
from repro.utils.rng import SeedLike

__all__ = ["DEFAULT_CONFIG_KEY", "FitRequest", "MicroBatchScheduler"]

#: Pool shard addressed by requests that do not name a configuration.
DEFAULT_CONFIG_KEY = "default"

#: Queue sentinel asking the batcher thread to flush and exit.
_STOP = object()


@dataclass
class FitRequest:
    """One deconvolution request addressed to a pool shard.

    Parameters mirror :meth:`repro.core.deconvolver.Deconvolver.fit` plus
    ``config``, the :class:`~repro.service.pool.SessionPool` shard key naming
    the deconvolver configuration that should serve the request, and two
    scheduling hints:

    * ``priority`` — larger values dispatch first when batches compete for
      a worker; ties keep arrival order.
    * ``deadline_ms`` — SLO budget from submit to response.  Admission
      control sheds the request up front when the projected queue wait
      already exceeds it, and the solve path drops it with
      :class:`~repro.service.errors.DeadlineExceeded` if it ages out before
      its solve starts.  ``None`` means no deadline (never shed, never
      dropped).

    Both hints steer *scheduling only*: they are excluded from
    :meth:`batch_key` and :meth:`fingerprint`, so mixed-priority traffic
    still coalesces and cached content answers any deadline.
    """

    times: np.ndarray
    measurements: np.ndarray
    sigma: np.ndarray | float | None = None
    lam: float | None = None
    lambda_method: str = "gcv"
    lambda_grid: np.ndarray | None = None
    rng: SeedLike = 0
    config: Hashable = DEFAULT_CONFIG_KEY
    priority: int = 0
    deadline_ms: float | None = None

    def batch_key(self) -> tuple:
        """Coalescing key: requests sharing it solve as one stacked batch.

        The session layer's :func:`~repro.core.session.fit_options_bucket`
        (fixed-lambda fits on one (grid, sigma) coalesce regardless of their
        lambda values, selection fits also group by method and candidate
        grid) prefixed with the configuration shard and the seed content
        (:func:`~repro.service.cache.seed_fingerprint` — the seed steers
        kernel construction and CV fold assignment, which a batch shares;
        ``None`` seeds never coalesce).  Priority and deadline are
        scheduling hints, not solve inputs, so they do not split batches.
        """
        return (
            self.config,
            seed_fingerprint(self.rng),
        ) + fit_options_bucket(
            self.times, self.sigma, self.lam, self.lambda_method, self.lambda_grid
        )

    def fingerprint(self) -> str:
        """Content hash for the result cache (see :func:`request_fingerprint`)."""
        return request_fingerprint(
            self.config,
            self.times,
            self.measurements,
            sigma=self.sigma,
            lam=self.lam,
            lambda_method=self.lambda_method,
            lambda_grid=self.lambda_grid,
            rng=self.rng,
        )


@dataclass
class _QueuedItem:
    """A request in flight: the future to resolve and its timing/cache keys."""

    request: FitRequest
    future: Future
    enqueued_at: float
    cache_key: str | None = field(default=None)
    deadline_at: float | None = field(default=None)
    settled: bool = field(default=False)


def _make_item(request: FitRequest, future: Future, now: float, cache_key) -> _QueuedItem:
    deadline_at = None
    if request.deadline_ms is not None:
        deadline_at = now + float(request.deadline_ms) / 1e3
    return _QueuedItem(request, future, now, cache_key, deadline_at)


class _ShardLease:
    """Lazy pool lease standing in for a :class:`PoolEntry` (process runner).

    The process runner solves in worker processes, which own their own
    session replicas — the parent-side session is only needed when the
    degraded path runs.  This proxy exposes the ``key``/``lock``/
    ``deconvolver`` surface ``_run_batch`` touches but acquires the actual
    pool entry on first session access (with the scheduler's retry policy),
    so the common fast path never builds or leases a parent session.
    """

    __slots__ = ("_scheduler", "_entry", "key")

    def __init__(self, scheduler: "MicroBatchScheduler", key: Hashable) -> None:
        self._scheduler = scheduler
        self._entry = None
        self.key = key

    @property
    def entry(self):
        if self._entry is None:
            self._entry = self._scheduler._acquire_entry_with_retry(self.key)
        return self._entry

    @property
    def lock(self):
        return self.entry.lock

    @property
    def deconvolver(self):
        return self.entry.deconvolver

    def release(self) -> None:
        if self._entry is not None:
            self._scheduler.pool.release(self._entry)
            self._entry = None


class MicroBatchScheduler:
    """Coalesce concurrent fit requests into stacked multi-RHS solves.

    Parameters
    ----------
    pool:
        The :class:`~repro.service.pool.SessionPool` whose shards serve the
        requests.
    max_batch:
        Dispatch a coalesced batch as soon as it holds this many requests.
    max_wait_ms:
        Dispatch a partial batch once its oldest request has waited this
        long — the latency bound of the micro-batching window.  With
        ``adaptive_wait`` the *effective* window shrinks toward the
        observed solve latency but never exceeds this bound.
    max_queue:
        Bound of the intake queue; :meth:`submit` blocks once it is full
        (backpressure) until the batcher catches up.
    workers:
        Size of the solve worker pool; defaults to
        :func:`repro.config.default_pool_size` for an unbounded task count
        of the runner's pool kind.  Under the thread runner batches for one
        shard serialize on the shard lock, so workers buy parallelism
        across shards; under the process runner every worker owns its own
        session replicas and even a single hot shard fans out.
    runner:
        ``"thread"`` (default) solves batches in-process;``"process"``
        dispatches them to a :class:`~repro.service.workers.ShardWorkerPool`
        of spawned worker processes (true multi-core).  ``None`` consults
        the environment variable named by :data:`repro.config.RUNNER_ENV_VAR`
        at construction time.  The process runner needs a picklable pool
        factory (:class:`~repro.service.pool.SessionFactory`): an explicit
        ``runner="process"`` with an unpicklable factory raises
        ``ValueError``, while an environment-selected one falls back to the
        thread runner and counts a ``runner_fallbacks`` telemetry event.
    cache:
        Result cache; defaults to a fresh 1024-entry
        :class:`~repro.service.cache.ResultCache`.  Pass ``ResultCache(0)``
        to disable caching.
    telemetry:
        Metrics hub; defaults to a fresh
        :class:`~repro.service.telemetry.Telemetry`.
    retry:
        :class:`~repro.service.robustness.RetryPolicy` for transient solve
        and session-build failures; defaults to three attempts with seeded
        exponential backoff.  ``RetryPolicy(max_attempts=1)`` disables
        retries.
    breaker_threshold:
        Consecutive solve/build failures on one shard that trip its circuit
        breaker onto the degraded serial path.
    breaker_reset_s:
        Seconds a tripped breaker stays open before a half-open probe.
    adaptive_wait:
        Tune the effective batching window down from observed p95 solve
        latency (never above ``max_wait_ms``).  ``False`` pins the window
        to ``max_wait_ms`` exactly.
    fault_plan:
        Optional seeded :class:`~repro.service.faults.FaultPlan` arming the
        solver / slow-solve / cache-eviction injection points (session-build
        faults are armed by wrapping the pool factory).
    """

    def __init__(
        self,
        pool: SessionPool,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        workers: int | None = None,
        runner: str | None = None,
        cache: ResultCache | None = None,
        telemetry: Telemetry | None = None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 1.0,
        adaptive_wait: bool = True,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        self.pool = pool
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_ms) / 1e3
        self.cache = cache if cache is not None else ResultCache()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_s = float(breaker_reset_s)
        requested_runner = runner
        if runner is None:
            runner = os.environ.get(config.RUNNER_ENV_VAR, config.DEFAULT_RUNNER)
        if runner not in ("thread", "process"):
            raise ValueError(
                f"runner must be 'thread' or 'process', got {runner!r}"
            )
        self._worker_pool: ShardWorkerPool | None = None
        if runner == "process":
            try:
                ensure_picklable(pool.factory)
            except ValueError:
                if requested_runner == "process":
                    raise
                # Environment-selected: degrade to the thread runner rather
                # than refusing to serve (the env var is a deployment knob,
                # not a per-call contract).
                runner = "thread"
                self.telemetry.increment("runner_fallbacks")
        self.runner = runner
        self.workers = (
            int(workers)
            if workers is not None
            else config.default_pool_size(
                None, kind="process" if runner == "process" else "thread"
            )
        )
        if runner == "process":
            self._worker_pool = ShardWorkerPool(
                pool.factory, workers=self.workers, telemetry=self.telemetry
            )
        self._queue: queue.Queue = queue.Queue(maxsize=int(max_queue))
        self._accept_lock = threading.Lock()
        self._closed = False
        self._discard = False
        self._crashed: SchedulerCrashed | None = None
        self._outstanding = 0
        self._outstanding_cond = threading.Condition()
        self._window = AdaptiveWindow(self.max_wait_seconds) if adaptive_wait else None
        # EWMA latency model feeding admission control and early dispatch:
        # amortized solve seconds per request and per batch.  Plain float
        # stores written by one worker at a time; readers tolerate staleness.
        self._request_cost = 0.0
        self._batch_cost = 0.0
        self._breaker_lock = threading.Lock()
        self._breakers: dict[Hashable, CircuitBreaker] = {}
        # Batches are executed by per-shard runners: one worker drains one
        # shard's batch queue end to end (holding the pool lease once), so
        # consecutive batches of a shard never pay a thread handoff or fight
        # over the shard lock.
        self._shard_lock = threading.Lock()
        self._shard_queues: dict[Hashable, list] = {}
        self._shard_active: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service-worker"
        )
        self._batcher = threading.Thread(
            target=self._batch_loop, name="repro-service-batcher", daemon=True
        )
        self._batcher.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._crashed is not None:
            raise SchedulerCrashed("scheduler crashed") from self._crashed
        if self._closed:
            raise RuntimeError("scheduler has been shut down")

    def effective_wait_seconds(self) -> float:
        """The batching window currently in force (adaptive or configured)."""
        if self._window is not None:
            return self._window.current()
        return self.max_wait_seconds

    def projected_wait_seconds(self) -> float:
        """Admission-control queue-wait projection for a new request.

        The EWMA amortized solve cost per request times the number of
        requests already in flight, plus the current batching window.  A
        heuristic, deliberately cheap (two float loads) and conservative:
        it assumes the new request queues behind everything outstanding.
        """
        return self._request_cost * self._outstanding + self.effective_wait_seconds()

    def _shed_exception(self, request: FitRequest) -> RequestShed | None:
        if request.deadline_ms is None:
            return None
        projected = self.projected_wait_seconds() * 1e3
        if projected <= float(request.deadline_ms):
            return None
        return RequestShed(projected, float(request.deadline_ms))

    def submit(self, request: FitRequest, *, timeout: float | None = None) -> Future:
        """Queue one request; returns a future resolving to its result.

        Cache hits resolve immediately without entering the queue.  A
        request with a ``deadline_ms`` the service cannot meet is shed up
        front: its future fails with
        :class:`~repro.service.errors.RequestShed` and nothing is queued.
        When the intake queue is full the call blocks (backpressure) until
        space frees, or raises :class:`queue.Full` after ``timeout`` seconds
        if a timeout is given.  Raises :class:`RuntimeError` after
        :meth:`shutdown` and :class:`~repro.service.errors.SchedulerCrashed`
        after a batcher crash (for cached and uncached content alike).
        """
        self._check_open()
        future: Future = Future()
        cache_key = request.fingerprint() if self.cache.max_entries > 0 else None
        if cache_key is not None:
            cached = self.cache.get(cache_key)
            if cached is not None:
                self.telemetry.record_batch(
                    {"requests": 1, "cache_hits": 1, "completed": 1},
                    {"latency_seconds": [0.0]},
                )
                future.set_result(cached)
                return future
        shed = self._shed_exception(request)
        if shed is not None:
            self.telemetry.record_batch({"requests": 1, "shed": 1}, {})
            future.set_exception(shed)
            return future
        item = _make_item(request, future, time.perf_counter(), cache_key)
        with self._accept_lock:
            self._check_open()
            self._queue.put(item, timeout=timeout)
            with self._outstanding_cond:
                self._outstanding += 1
        self.telemetry.increment("requests")
        return future

    def submit_many(
        self, requests: Iterable[FitRequest], *, timeout: float | None = None
    ) -> list[Future]:
        """Bulk intake: queue many requests with one lock round-trip.

        Semantically ``[submit(r) for r in requests]`` (cache hits resolve
        immediately, deadline-infeasible requests shed, the rest enter the
        batching queue in order) but the accept lock and telemetry are
        touched once for the whole list, which matters for bulk producers
        feeding hundreds of requests at a time.

        If a ``timeout`` is given and the queue stays full, the call raises
        :class:`~repro.service.errors.IntakeOverflow` (a
        :class:`queue.Full` subclass) carrying the explicit split: its
        ``accepted`` lists one future per accepted request in input order
        (cache hits and enqueued requests — all of which are still
        processed), its ``rejected`` lists the requests that never entered
        the queue.  The rejected requests' futures are failed with the same
        overflow error, so nothing silently drops and nothing hangs.
        """
        self._check_open()
        futures: list[Future] = []
        hits = 0
        shed = 0
        items: list[_QueuedItem] = []
        now = time.perf_counter()
        for request in requests:
            future = Future()
            futures.append(future)
            cache_key = request.fingerprint() if self.cache.max_entries > 0 else None
            cached = self.cache.get(cache_key) if cache_key is not None else None
            if cached is not None:
                hits += 1
                future.set_result(cached)
                continue
            shed_exc = self._shed_exception(request)
            if shed_exc is not None:
                shed += 1
                future.set_exception(shed_exc)
                continue
            items.append(_make_item(request, future, now, cache_key))
        accepted = 0
        try:
            with self._accept_lock:
                self._check_open()
                for item in items:
                    # Count each item as it is accepted: if a put times out
                    # mid-batch, the already-enqueued items stay correctly
                    # accounted and drain()/shutdown() still converge.
                    self._queue.put(item, timeout=timeout)
                    with self._outstanding_cond:
                        self._outstanding += 1
                    accepted += 1
        except queue.Full:
            rejected_items = items[accepted:]
            rejected_futures = {id(item.future) for item in rejected_items}
            overflow = IntakeOverflow(
                [f for f in futures if id(f) not in rejected_futures],
                [item.request for item in rejected_items],
            )
            for item in rejected_items:
                # Never counted as outstanding, so fail directly (no
                # _settled bookkeeping) — the future must not hang.
                item.future.set_exception(overflow)
            self.telemetry.record_batch(
                {
                    "requests": len(futures),
                    "cache_hits": hits,
                    "completed": hits,
                    "shed": shed,
                    "rejected": len(rejected_items),
                },
                {"latency_seconds": [0.0] * hits},
            )
            raise overflow from None
        self.telemetry.record_batch(
            {
                "requests": len(futures),
                "cache_hits": hits,
                "completed": hits,
                "shed": shed,
            },
            {"latency_seconds": [0.0] * hits},
        )
        return futures

    def map(self, requests: Iterable[FitRequest]) -> list:
        """Submit ``requests`` and block for their results, in input order."""
        futures = self.submit_many(requests)
        return [future.result() for future in futures]

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted request has resolved.

        Returns ``True`` when the service went idle, ``False`` on timeout.
        """
        with self._outstanding_cond:
            return self._outstanding_cond.wait_for(
                lambda: self._outstanding == 0, timeout=timeout
            )

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        With ``drain=True`` (default) everything already accepted is solved
        before the threads stop; with ``drain=False`` requests not yet
        dispatched to a worker are cancelled (their futures end in the
        cancelled state).  Idempotent; safe after a crash (the crash path
        already resolved everything).
        """
        with self._accept_lock:
            if self._closed:
                if self._crashed is None:
                    return
            else:
                self._closed = True
                self._discard = not drain
        self._queue.put(_STOP)
        self._batcher.join(timeout)
        if drain:
            self.drain(timeout)
        self._executor.shutdown(wait=True)
        if self._worker_pool is not None:
            # Runner threads have all returned, so no batch is in flight;
            # closing here guarantees no orphaned worker process survives
            # the scheduler.
            self._worker_pool.close()

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`shutdown` has been called (or after a crash)."""
        return self._closed

    @property
    def crashed(self) -> bool:
        """``True`` when the batcher thread died and the service is down."""
        return self._crashed is not None

    def queue_depth(self) -> int:
        """Number of accepted requests waiting in the intake queue."""
        return self._queue.qsize()

    def outstanding(self) -> int:
        """Number of accepted requests not yet resolved (queued + solving)."""
        with self._outstanding_cond:
            return self._outstanding

    def stats(self) -> dict:
        """Queue depth, in-flight count, knobs, and pool/cache/telemetry stats."""
        with self._outstanding_cond:
            outstanding = self._outstanding
        with self._breaker_lock:
            breakers = {repr(key): b.state for key, b in self._breakers.items()}
        return {
            "queued": self._queue.qsize(),
            "outstanding": outstanding,
            "workers": self.workers,
            "runner": self.runner,
            "worker_pool": (
                self._worker_pool.stats() if self._worker_pool is not None else None
            ),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_seconds * 1e3,
            "effective_wait_ms": self.effective_wait_seconds() * 1e3,
            "request_cost_ms": self._request_cost * 1e3,
            "closed": self._closed,
            "crashed": self._crashed is not None,
            "breakers": breakers,
            "pool": self.pool.stats(),
            "cache": self.cache.stats(),
            "telemetry": self.telemetry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Batcher thread
    # ------------------------------------------------------------------

    def _batch_loop(self) -> None:
        pending: dict[tuple, list[_QueuedItem]] = {}
        deadlines: dict[tuple, float] = {}
        priorities: dict[tuple, int] = {}

        def dispatch(key: tuple) -> None:
            items = pending.pop(key)
            deadlines.pop(key, None)
            priorities.pop(key, None)
            shard = key[0]
            if self._worker_pool is not None:
                # Process runner: no per-shard serialization.  Each worker
                # owns its own session replica, so concurrent batches of one
                # shard are exactly the point — hand every batch straight to
                # a runner thread (which parks on its worker's response).
                self._executor.submit(self._run_process_batch, shard, items)
                return
            with self._shard_lock:
                self._shard_queues.setdefault(shard, []).append(items)
                if shard in self._shard_active:
                    return
                self._shard_active.add(shard)
            self._executor.submit(self._run_shard, shard)

        def add(item: _QueuedItem) -> None:
            key = item.request.batch_key()
            bucket = pending.setdefault(key, [])
            now = time.perf_counter()
            if not bucket:
                deadlines[key] = now + self.effective_wait_seconds()
                priorities[key] = item.request.priority
            else:
                priorities[key] = max(priorities[key], item.request.priority)
            if item.deadline_at is not None:
                # Deadline-aware early dispatch: leave an estimated solve's
                # worth of headroom before the tightest deadline in the
                # bucket, instead of idling out the full window.
                target = max(now, item.deadline_at - self._batch_cost)
                deadlines[key] = min(deadlines[key], target)
            bucket.append(item)
            if len(bucket) >= self.max_batch:
                dispatch(key)

        try:
            while True:
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - time.perf_counter())
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    item = None
                if item is _STOP:
                    # FIFO guarantees every accepted item precedes the stop
                    # sentinel; drain whatever is left, then flush or cancel.
                    while True:
                        try:
                            extra = self._queue.get_nowait()
                        except queue.Empty:
                            break
                        if extra is not _STOP:
                            add(extra)
                    for key in sorted(pending, key=lambda k: -priorities[k]):
                        if self._discard:
                            for stale in pending.pop(key):
                                self._cancel(stale)
                        else:
                            dispatch(key)
                    return
                if item is not None:
                    add(item)
                now = time.perf_counter()
                expired = [k for k, d in deadlines.items() if d <= now]
                # Highest priority dispatches first when several buckets
                # expire in the same tick (ties keep dict / arrival order).
                for key in sorted(expired, key=lambda k: -priorities[k]):
                    dispatch(key)
        except BaseException as exc:
            self._on_batcher_crash(exc, pending)
            raise

    def _on_batcher_crash(self, exc: BaseException, pending: dict) -> None:
        """Fail every queued and pending future; poison later submits.

        The supervisor path behind the hang-forever fix: the batcher dying
        used to strand whatever sat in the intake queue.  Flag order
        matters — ``_crashed``/``_closed`` are set *before* draining so any
        producer blocked in ``put`` gets queue space, completes, releases
        the accept lock, and its item is caught by the locked second drain;
        producers arriving later fail the ``_check_open`` gate instead.
        """
        crash = SchedulerCrashed("the batcher thread crashed; the service is down")
        crash.__cause__ = exc
        self._crashed = crash
        self._closed = True
        self.telemetry.increment("scheduler_crashes")

        def drain_queue() -> None:
            while True:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    return
                if extra is not _STOP:
                    self._fail(extra, crash)

        drain_queue()
        with self._accept_lock:
            drain_queue()
        for items in pending.values():
            for item in items:
                self._fail(item, crash)
        pending.clear()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _breaker_for(self, shard: Hashable) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(shard)
            if breaker is None:
                breaker = self._breakers[shard] = CircuitBreaker(
                    self.breaker_threshold, self.breaker_reset_s
                )
            return breaker

    def _acquire_entry_with_retry(self, shard: Hashable):
        """Lease the shard, retrying transient session-build failures."""
        breaker = self._breaker_for(shard)
        attempt = 0
        while True:
            try:
                entry = self.pool.acquire(shard)
                return entry
            except Exception as exc:
                if breaker.record_failure():
                    self.telemetry.increment("breaker_trips")
                if self.retry.should_retry(exc, attempt):
                    self.telemetry.increment("retries")
                    time.sleep(self.retry.delay_seconds(attempt))
                    attempt += 1
                    continue
                raise

    def _fail_shard_queue(self, shard: Hashable, exc: BaseException) -> None:
        while True:
            with self._shard_lock:
                batches = self._shard_queues.get(shard)
                if not batches:
                    self._shard_active.discard(shard)
                    return
                items = batches.pop(0)
            for item in items:
                self._fail(item, exc)

    def _run_shard(self, shard: Hashable) -> None:
        """Drain one shard's dispatched batches on a single worker thread.

        The pool lease (and with it the shard lock) is taken once for the
        whole drain, so back-to-back batches of one configuration never pay
        a thread handoff; the runner deactivates atomically with the
        emptiness check, and the batcher starts a new runner when it
        dispatches into an inactive shard.  Session-build failures (e.g. an
        injected fault in the pool factory) are retried per the policy and
        otherwise fail the queued futures — and a batch whose execution
        raises unexpectedly fails *its own* items instead of stranding
        them, so a dying runner never leaves a hang.
        """
        try:
            entry = self._acquire_entry_with_retry(shard)
        except Exception as exc:  # e.g. the pool factory failed
            self._fail_shard_queue(shard, exc)
            return
        try:
            while True:
                with self._shard_lock:
                    batches = self._shard_queues.get(shard)
                    if not batches:
                        self._shard_active.discard(shard)
                        return
                    taken, batches[:] = batches[:], []
                # Adaptive re-batching: everything that queued up while
                # the previous solve ran is taken in one gulp and
                # re-merged by batch key, so sustained load coalesces
                # into maximal batches no matter how the time windows
                # fell at intake.
                merged: dict[tuple, list[_QueuedItem]] = {}
                for items in taken:
                    merged.setdefault(items[0].request.batch_key(), []).extend(items)
                ordered = sorted(
                    merged.values(),
                    key=lambda batch: -max(i.request.priority for i in batch),
                )
                for items in ordered:
                    try:
                        self._run_batch(entry, items)
                    except BaseException as exc:
                        # A runner must never strand its batch: the settled
                        # guard makes double-failing already-resolved items
                        # a no-op.
                        for item in items:
                            self._fail(item, exc)
        finally:
            self.pool.release(entry)

    def _run_process_batch(self, shard: Hashable, items: list[_QueuedItem]) -> None:
        """Run one dispatched batch through the process runner.

        The heavy lifting happens in a worker process; the parent session is
        leased lazily (only if the degraded path actually runs) and released
        when the batch settles.  Like ``_run_shard``, a dying runner fails
        its own items instead of stranding them.
        """
        lease = _ShardLease(self, shard)
        try:
            self._run_batch(lease, items)
        except BaseException as exc:
            for item in items:
                self._fail(item, exc)
        finally:
            lease.release()

    def _solve_fast(self, entry, to_solve: list[_QueuedItem]) -> list:
        """One batched ``fit_many`` dispatch with retry and breaker wiring."""
        breaker = self._breaker_for(entry.key)
        first = to_solve[0].request
        attempt = 0
        while True:
            try:
                start = time.perf_counter()
                if self._worker_pool is not None:
                    if self.fault_plan is not None:
                        self.fault_plan.before_solve(entry.key, len(to_solve))
                    matrix = np.column_stack(
                        [item.request.measurements for item in to_solve]
                    )
                    # Same single-bucket batch as the thread path below, but
                    # dispatched to a pinned worker process; a dead or
                    # timed-out worker raises WorkerCrashed (transient) and
                    # lands in the shared retry/breaker machinery.
                    results = self._worker_pool.solve_batch(
                        entry.key,
                        times=first.times,
                        matrix=matrix,
                        sigma=first.sigma,
                        lams=None
                        if first.lam is None
                        else [item.request.lam for item in to_solve],
                        lambda_method=first.lambda_method,
                        lambda_grid=first.lambda_grid,
                        rng=first.rng,
                    )
                else:
                    with entry.lock:
                        if self.fault_plan is not None:
                            self.fault_plan.before_solve(entry.key, len(to_solve))
                        matrix = np.column_stack(
                            [item.request.measurements for item in to_solve]
                        )
                        # All items share a batch key, so this is exactly one
                        # session bucket: dispatch it as a single fit_many
                        # call (one stacked multi-RHS solve per distinct
                        # lambda) against the shard's warm session caches.
                        results = entry.deconvolver.fit_many(
                            first.times,
                            matrix,
                            sigma=first.sigma,
                            lam=None
                            if first.lam is None
                            else [item.request.lam for item in to_solve],
                            lambda_method=first.lambda_method,
                            lambda_grid=first.lambda_grid,
                            rng=first.rng,
                            engine="batch",
                        )
                self._observe_solve(time.perf_counter() - start, len(to_solve))
                breaker.record_success()
                return results
            except Exception as exc:
                if breaker.record_failure():
                    self.telemetry.increment("breaker_trips")
                if self.retry.should_retry(exc, attempt):
                    self.telemetry.increment("retries")
                    time.sleep(self.retry.delay_seconds(attempt))
                    attempt += 1
                    continue
                raise

    def _solve_degraded(self, entry, to_solve: list[_QueuedItem]) -> list:
        """Serial-reference fallback: one plain ``fit`` per request.

        Runs while the shard's breaker is open.  Results are bit-exact with
        the fast path (the session layer's tested guarantee) — only slower,
        which is the graceful-degradation contract.  Sits *behind* the
        fault-injection boundary on purpose: injected faults model the
        batched engine failing, and the fallback must not inherit them.
        Per-item failures come back as the exception instance so one bad
        request cannot take down its batch neighbours.
        """
        self.telemetry.increment("degraded_requests", len(to_solve))
        out: list = []
        for item in to_solve:
            request = item.request
            try:
                with entry.lock:
                    out.append(
                        entry.deconvolver.fit(
                            request.times,
                            request.measurements,
                            sigma=request.sigma,
                            lam=request.lam,
                            lambda_method=request.lambda_method,
                            lambda_grid=request.lambda_grid,
                            rng=request.rng,
                        )
                    )
            except Exception as exc:
                out.append(exc)
        return out

    def _observe_solve(self, solve_seconds: float, solved: int) -> None:
        if self._window is not None:
            self._window.observe(solve_seconds)
        per_request = solve_seconds / max(1, solved)
        self._request_cost = (
            per_request
            if self._request_cost == 0.0
            else 0.8 * self._request_cost + 0.2 * per_request
        )
        self._batch_cost = (
            solve_seconds
            if self._batch_cost == 0.0
            else 0.8 * self._batch_cost + 0.2 * solve_seconds
        )
        self.telemetry.observe("solve_seconds", solve_seconds)

    def _run_batch(self, entry, items: Sequence[_QueuedItem]) -> None:
        # Triage pass: late cache hits (an earlier batch may have solved
        # identical content since these items were queued) deliver even when
        # stale — delivery is free; everything else is checked against its
        # deadline before any solve time is spent, then deduplicated so
        # bit-exact repeats inside one batch need a single solve row.
        now = time.perf_counter()
        ready: list[tuple[_QueuedItem, object]] = []
        to_solve: list[_QueuedItem] = []
        missed = 0
        leaders: dict[str, int] = {}
        duplicates: dict[int, list[_QueuedItem]] = {}
        for item in items:
            key = item.cache_key
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    ready.append((item, cached))
                    continue
            if item.deadline_at is not None and now > item.deadline_at:
                self._miss_deadline(item, now)
                missed += 1
                continue
            if key is not None:
                leader = leaders.get(key)
                if leader is not None:
                    duplicates.setdefault(leader, []).append(item)
                    continue
                leaders[key] = len(to_solve)
            to_solve.append(item)
        deduplicated = len(items) - len(ready) - len(to_solve) - missed
        results: list = []
        if to_solve:
            breaker = self._breaker_for(entry.key)
            degraded = not breaker.allow()
            if not degraded:
                try:
                    results = self._solve_fast(entry, to_solve)
                except Exception as exc:
                    if breaker.state == "open":
                        # The failure (or an earlier one) tripped the shard:
                        # serve this batch on the degraded path instead of
                        # failing it.
                        degraded = True
                    else:
                        now = time.perf_counter()
                        self.telemetry.record_batch(
                            {
                                "batches": 1,
                                "batched_requests": len(items),
                                "cache_hits": len(ready),
                                "deduplicated": deduplicated,
                                "completed": len(ready),
                            },
                            {
                                "batch_size": [len(items)],
                                "latency_seconds": [
                                    now - item.enqueued_at for item, _ in ready
                                ],
                            },
                        )
                        for index, item in enumerate(to_solve):
                            self._fail(item, exc)
                            for duplicate in duplicates.get(index, []):
                                self._fail(duplicate, exc)
                        for item, result in ready:
                            self._resolve(item, result)
                        return
            if degraded:
                results = self._solve_degraded(entry, to_solve)
        now = time.perf_counter()
        latencies = []
        resolved = 0
        stored = 0
        for index, (item, result) in enumerate(zip(to_solve, results)):
            if isinstance(result, BaseException):
                self._fail(item, result)
                for duplicate in duplicates.get(index, []):
                    self._fail(duplicate, result)
                continue
            if item.cache_key is not None:
                # A cached result must not pin its shard session's
                # factorization caches past pool eviction; releasing keeps
                # the lazy diagnostics and costs only attribute rebinds.
                self.cache.put(item.cache_key, result.release_backing_caches())
                stored += 1
            latencies.append(now - item.enqueued_at)
            self._resolve(item, result)
            resolved += 1
            for duplicate in duplicates.get(index, []):
                latencies.append(now - duplicate.enqueued_at)
                self._resolve(duplicate, result)
                resolved += 1
        for item, result in ready:
            latencies.append(now - item.enqueued_at)
            self._resolve(item, result)
            resolved += 1
        if stored and self.fault_plan is not None:
            self.fault_plan.on_cache_store(self.cache)
        self.telemetry.record_batch(
            {
                "batches": 1,
                "batched_requests": len(items),
                "cache_hits": len(ready),
                "deduplicated": deduplicated,
                "completed": resolved,
            },
            {"batch_size": [len(items)], "latency_seconds": latencies},
        )

    def _settle(self, item: _QueuedItem) -> bool:
        # Each item is owned by exactly one thread at a time (the batcher or
        # its shard runner), so a plain flag is enough to make resolution
        # idempotent — the crash paths may re-fail a batch defensively.
        if item.settled:
            return False
        item.settled = True
        return True

    def _resolve(self, item: _QueuedItem, result: object) -> None:
        if not self._settle(item):
            return
        try:
            item.future.set_result(result)
        except InvalidStateError:  # future was cancelled by the caller
            pass
        self._settled()

    def _fail(self, item: _QueuedItem, exc: BaseException) -> None:
        if not self._settle(item):
            return
        self.telemetry.increment("errors")
        try:
            item.future.set_exception(exc)
        except InvalidStateError:
            pass
        self._settled()

    def _miss_deadline(self, item: _QueuedItem, now: float) -> None:
        if not self._settle(item):
            return
        self.telemetry.increment("deadline_missed")
        waited_ms = (now - item.enqueued_at) * 1e3
        try:
            item.future.set_exception(
                DeadlineExceeded(waited_ms, float(item.request.deadline_ms))
            )
        except InvalidStateError:
            pass
        self._settled()

    def _cancel(self, item: _QueuedItem) -> None:
        if not self._settle(item):
            return
        self.telemetry.increment("cancelled")
        item.future.cancel()
        self._settled()

    def _settled(self) -> None:
        with self._outstanding_cond:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._outstanding_cond.notify_all()
