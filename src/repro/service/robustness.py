"""Failure-containment primitives for the fit service runtime.

Three small, independently testable pieces the scheduler composes into its
robust solve path:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  deterministic seeded jitter for *transient* failures (injected faults,
  flaky session builds); deterministic errors fail fast.
* :class:`CircuitBreaker` — a per-shard trip switch: after
  ``failure_threshold`` consecutive solve/build failures the fast batched
  path is considered broken and traffic routes to the degraded serial
  reference path until a half-open probe succeeds.
* :class:`AdaptiveWindow` — tunes the scheduler's micro-batching window
  from observed solve latency: when solves are much faster than the
  configured ``max_wait_ms`` the window shrinks (waiting would dominate
  latency); it never grows beyond the configured bound, so the configured
  ``max_wait_ms`` stays a hard latency ceiling.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["AdaptiveWindow", "CircuitBreaker", "RetryPolicy"]


def _default_retryable(exc: BaseException) -> bool:
    # Retry only failures that declare themselves transient (e.g. the fault
    # harness's InjectedFault, or any exception carrying transient=True):
    # re-running a deterministic solver on the same inputs cannot help.
    return bool(getattr(exc, "transient", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``3`` means up to two retries).
    base_delay_ms:
        Backoff before the first retry; doubles (``multiplier``) per retry.
    multiplier:
        Exponential backoff factor between consecutive retries.
    jitter:
        Fraction of the delay randomised away (``0.5`` draws the actual
        delay uniformly from ``[0.5, 1.0] * delay``).  The draw is a pure
        function of ``(seed, attempt)``, so retry schedules are reproducible
        run to run — the property the deterministic chaos suite asserts on.
    seed:
        Seed of the jitter stream.
    retryable:
        Predicate deciding whether an exception is worth retrying; defaults
        to "the exception carries ``transient=True``".
    """

    max_attempts: int = 3
    base_delay_ms: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retryable: Callable[[BaseException], bool] | None = None

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) may be retried."""
        if attempt + 1 >= self.max_attempts:
            return False
        predicate = self.retryable if self.retryable is not None else _default_retryable
        return predicate(exc)

    def delay_seconds(self, attempt: int) -> float:
        """Backoff before retrying after the 0-based ``attempt`` failed."""
        delay = (self.base_delay_ms / 1e3) * (self.multiplier ** attempt)
        if self.jitter > 0.0:
            fraction = float(np.random.default_rng([self.seed, attempt]).random())
            delay *= (1.0 - self.jitter) + self.jitter * fraction
        return delay


class CircuitBreaker:
    """Consecutive-failure trip switch with a timed half-open probe.

    States: *closed* (fast path allowed), *open* (fast path refused until
    ``reset_after_s`` elapses), *half-open* (one probe allowed through; its
    outcome closes or re-opens the breaker).  All methods are thread-safe.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls that trip the breaker.
    reset_after_s:
        Seconds the breaker stays open before allowing a half-open probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 1.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"`` or ``"half-open"``."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the fast path may run now.

        Open breakers refuse until ``reset_after_s`` has elapsed, then admit
        exactly one half-open probe; concurrent callers during the probe are
        refused until the probe settles.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open" and (
                self._clock() - self._opened_at >= self.reset_after_s
            ):
                self._state = "half-open"
                return True
            return False

    def record_success(self) -> None:
        """A fast-path call succeeded: close the breaker, reset the count."""
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> bool:
        """A fast-path call failed; returns ``True`` when this call trips.

        A failure during the half-open probe re-opens immediately (the probe
        is the threshold).
        """
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self.failure_threshold:
                tripped = self._state != "open"
                self._state = "open"
                self._opened_at = self._clock()
                if tripped:
                    self.trips += 1
                return tripped
            return False


class AdaptiveWindow:
    """Micro-batching window tuned from observed solve latency.

    The effective window is ``clamp(fraction * p95(solve_seconds), floor,
    base)`` over a bounded reservoir of recent per-batch solve durations:
    when solves take much longer than the configured window, nothing
    changes (coalescing while a solve runs is free); when solves are *fast*
    relative to the configured window, waiting the full window would
    dominate end-to-end latency, so the window shrinks toward the solve
    scale.  The configured ``base`` is a hard ceiling — adaptation never
    makes latency worse than the static configuration.

    Parameters
    ----------
    base_seconds:
        The configured ``max_wait_ms`` bound (the ceiling).
    fraction:
        Target window as a fraction of the observed p95 solve duration.
    floor_seconds:
        Lower clamp (``0`` allows fully greedy dispatch under fast solves).
    max_samples:
        Reservoir bound; older solve durations age out.
    """

    def __init__(
        self,
        base_seconds: float,
        *,
        fraction: float = 0.5,
        floor_seconds: float = 0.0,
        max_samples: int = 64,
    ) -> None:
        self.base_seconds = float(base_seconds)
        self.fraction = float(fraction)
        self.floor_seconds = float(floor_seconds)
        self._samples: deque[float] = deque(maxlen=int(max_samples))
        self._lock = threading.Lock()
        self._current = float(base_seconds)

    def observe(self, solve_seconds: float) -> None:
        """Record one per-batch solve duration and retune the window.

        The p95 is recomputed here (once per *batch*, a cold path) so
        :meth:`current` stays a lock-plus-load on the batcher's hot path.
        """
        with self._lock:
            self._samples.append(float(solve_seconds))
            p95 = float(np.percentile(self._samples, 95.0))
            self._current = min(
                self.base_seconds, max(self.floor_seconds, self.fraction * p95)
            )

    def current(self) -> float:
        """The effective window in seconds (``base`` until first observation)."""
        with self._lock:
            return self._current
