"""Sharded, budget-bounded pool of :class:`~repro.core.session.FitSession`.

A long-lived fit service serves many deconvolver configurations (parameter
sets, basis sizes, solver backends), each of which owns per-grid kernels and
factorizations through its session.  :class:`SessionPool` shards those
sessions by an opaque hashable *configuration key*: the first lease of a key
builds a deconvolver through the caller-supplied factory (which typically
registers pre-built kernels on the session), later leases return the same
entry with every factorization warm.  An LRU policy bounds the pool by entry
count and, optionally, by the sessions' approximate memory
(:meth:`~repro.core.session.FitSession.approx_bytes`); entries currently
leased by a worker are never evicted.  Hit/miss/eviction counters make the
cache behaviour observable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Hashable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deconvolver import Deconvolver

__all__ = ["PoolEntry", "SessionFactory", "SessionPool"]


class SessionFactory:
    """Picklable session factory: a deconvolver config plus its kernels.

    The thread runner accepts any ``factory(key) -> Deconvolver`` callable,
    but the process runner must ship the factory to spawned workers, and a
    closure does not pickle.  This class carries the same payload the CLI
    and bench closures used to capture — cell-cycle parameters, basis size,
    constraint overrides, solver backend, pre-built kernels — as plain
    attributes, so one instance serves both runners: the parent's
    :class:`SessionPool` calls it for the degraded/in-process path while
    each worker process calls its own pickled copy.

    Parameters
    ----------
    parameters:
        Cell-cycle parameters of the deconvolver (``None`` = paper values).
    num_basis:
        Spline basis size.
    constraints:
        Constraint overrides (``None`` = the defaults).
    solver_backend:
        Solver backend passed through to the deconvolver.
    kernels:
        Pre-built kernels registered on every new session.
    """

    def __init__(
        self,
        *,
        parameters=None,
        num_basis: int | None = None,
        constraints=None,
        solver_backend: str = "auto",
        kernels=(),
    ) -> None:
        self.parameters = parameters
        self.num_basis = num_basis
        self.constraints = constraints
        self.solver_backend = solver_backend
        self.kernels = list(kernels)

    def __call__(self, _key: Hashable) -> "Deconvolver":
        """Build a configured deconvolver with every kernel registered."""
        from repro import config
        from repro.core.deconvolver import Deconvolver

        deconvolver = Deconvolver(
            parameters=self.parameters,
            num_basis=self.num_basis
            if self.num_basis is not None
            else config.DEFAULT_NUM_BASIS,
            constraints=self.constraints,
            solver_backend=self.solver_backend,
        )
        session = deconvolver.session()
        for kernel in self.kernels:
            session.register_kernel(kernel)
        return deconvolver


class PoolEntry:
    """One pool shard: a deconvolver, its session and a serialization lock.

    Sessions are not thread-safe, so every worker touching ``session`` (or
    fitting through ``deconvolver``) must hold ``lock``;
    :meth:`SessionPool.lease` hands entries out with the lease already
    counted so the pool cannot evict them mid-solve.
    """

    def __init__(self, key: Hashable, deconvolver: "Deconvolver") -> None:
        self.key = key
        self.deconvolver = deconvolver
        self.session = deconvolver.session()
        self.lock = threading.RLock()
        self.leases = 0


class SessionPool:
    """LRU pool of fit sessions sharded by configuration key.

    Parameters
    ----------
    factory:
        ``factory(key) -> Deconvolver`` building the configured facade for a
        shard; it may pre-register kernels on ``deconvolver.session()``.
    max_entries:
        Entry budget (at least 1); least-recently-leased shards are evicted
        once exceeded.
    max_bytes:
        Optional budget on the summed
        :meth:`~repro.core.session.FitSession.approx_bytes` of all entries;
        LRU shards are evicted until the total fits (the most recent entry
        is always kept, so one oversized session does not thrash).
    """

    def __init__(
        self,
        factory: Callable[[Hashable], "Deconvolver"],
        *,
        max_entries: int = 8,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self._factory = factory
        self.max_entries = int(max_entries)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, PoolEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.build_failures = 0

    @property
    def factory(self) -> Callable[[Hashable], "Deconvolver"]:
        """The session factory (the process runner ships it to workers)."""
        return self._factory

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def keys(self) -> list:
        """Shard keys in LRU-to-MRU order (least recently leased first)."""
        with self._lock:
            return list(self._entries)

    def _evict_over_budget(self) -> None:
        # Caller holds self._lock.  Walk LRU-first, skipping leased entries
        # and the MRU entry (the one just acquired).
        def over_budget() -> bool:
            if len(self._entries) > self.max_entries:
                return True
            if self.max_bytes is None or len(self._entries) <= 1:
                return False
            total = sum(e.session.approx_bytes() for e in self._entries.values())
            return total > self.max_bytes

        while over_budget():
            victim_key = None
            entries = list(self._entries.items())
            for key, entry in entries[:-1]:  # never the MRU entry
                if entry.leases == 0:
                    victim_key = key
                    break
            if victim_key is None:
                return  # everything evictable is leased; try again later
            del self._entries[victim_key]
            self.evictions += 1

    def acquire(self, key: Hashable) -> PoolEntry:
        """Lease the shard for ``key`` without a context manager.

        The imperative twin of :meth:`lease` for callers that need to retry
        the build (the scheduler's transient-failure path): the returned
        entry's lease count is raised and the caller MUST pair this with
        :meth:`release`.  Factory failures propagate (and count in
        ``build_failures``) without registering an entry.
        """
        return self._acquire(key)

    def release(self, entry: PoolEntry) -> None:
        """Return a lease taken with :meth:`acquire`."""
        self._release(entry)

    def _acquire(self, key: Hashable) -> PoolEntry:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                entry.leases += 1
                return entry
            self.misses += 1
        # Build outside the pool lock: factories run Monte-Carlo kernel
        # builds and must not serialize unrelated shards.
        try:
            deconvolver = self._factory(key)
        except BaseException:
            with self._lock:
                self.build_failures += 1
            raise
        built = PoolEntry(key, deconvolver)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = built
                self._entries[key] = entry
            self._entries.move_to_end(key)
            entry.leases += 1
            self._evict_over_budget()
            return entry

    def _release(self, entry: PoolEntry) -> None:
        with self._lock:
            entry.leases -= 1
            self._evict_over_budget()

    @contextmanager
    def lease(self, key: Hashable) -> Iterator[PoolEntry]:
        """Context-managed shard access protected from eviction.

        Yields the :class:`PoolEntry` for ``key`` (building it on a miss)
        with its lease count raised for the duration of the ``with`` block.
        The caller must still take ``entry.lock`` before touching the
        session; the pool only guarantees the entry stays resident.
        """
        entry = self._acquire(key)
        try:
            yield entry
        finally:
            self._release(entry)

    def clear(self) -> None:
        """Drop every unleased shard (counters are kept)."""
        with self._lock:
            for key in [k for k, e in self._entries.items() if e.leases == 0]:
                del self._entries[key]

    def stats(self) -> dict:
        """Pool shape, budgets, counters and per-shard session stats."""
        with self._lock:
            entries = list(self._entries.items())
            return {
                "entries": len(entries),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "build_failures": self.build_failures,
                "total_bytes": sum(e.session.approx_bytes() for _, e in entries),
                "sessions": {repr(key): e.session.stats() for key, e in entries},
            }
