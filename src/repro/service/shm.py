"""Single-producer shared-memory ring buffers for worker handoff.

The process execution engine (:mod:`repro.service.workers`) moves the bulky
payloads of a solve — the stacked measurement matrix on the way in, the
stacked coefficient/fitted/sigma block on the way out — through
``multiprocessing.shared_memory`` segments instead of pickling them through
the control queues.  Each direction of each worker gets one
:class:`ShmRing`: the producer copies the array bytes straight into the
mapped segment (the only copy on the producing side) and ships a tiny
``(offset, shape)`` handle in the pickled control message; the consumer maps
a zero-copy :func:`numpy.ndarray` view onto the same physical pages.

Layout
------
``[0:8)``  write cursor — absolute bytes ever claimed (``uint64``).
``[8:16)`` read cursor — absolute bytes ever released (``uint64``).
``[16:16+capacity)`` data area.

Cursors are *monotonic absolute offsets* (they never wrap; a block's
physical position is ``offset % capacity``), which makes the free-space
check a single subtraction and keeps stale handles detectable.  Blocks
never straddle the wrap point: a write that would cross the end of the data
area first claims the tail padding and starts at the next boundary, so every
handle maps to one contiguous memoryview.

Concurrency contract: exactly one producer and one consumer per ring (the
pool holds a submit lock per worker; the worker itself is single-threaded),
with release strictly in claim order.  Cursor loads/stores are single
8-byte aligned accesses.  When a ring is full (slow consumer) or a block
exceeds the capacity outright, the caller falls back to pickling the
payload inline — the ring is a fast path, never a correctness dependency.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmRing"]

#: Bytes reserved for the two cursors at the head of the segment.
_HEADER_BYTES = 16

#: Alignment of every data block (keeps float64 views aligned).
_ALIGN = 8


class ShmRing:
    """One single-producer/single-consumer ring over a shared segment.

    Parameters
    ----------
    segment:
        The mapped :class:`~multiprocessing.shared_memory.SharedMemory`.
    capacity:
        Data-area size in bytes (segment size minus the cursor header).
    owner:
        Whether this side created the segment (and must unlink it).
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, capacity: int, *, owner: bool
    ) -> None:
        self._segment = segment
        self.capacity = int(capacity)
        self._owner = owner
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        """Create a new ring with ``capacity`` data bytes (producer side)."""
        capacity = max(_ALIGN, int(capacity))
        capacity += (-capacity) % _ALIGN
        segment = shared_memory.SharedMemory(create=True, size=_HEADER_BYTES + capacity)
        segment.buf[:_HEADER_BYTES] = b"\x00" * _HEADER_BYTES
        return cls(segment, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Attach to an existing ring by segment ``name`` (worker side).

        Spawned workers share the parent's resource tracker (the fd rides
        the spawn preparation data), so attaching registers the segment at
        most once tree-wide and only the creator's :meth:`close` unlinks it
        — no per-process unregister dance is needed.
        """
        segment = shared_memory.SharedMemory(name=name)
        return cls(segment, int(capacity), owner=False)

    @property
    def name(self) -> str:
        """OS-level name of the backing segment (ships in init payloads)."""
        return self._segment.name

    # -- cursors -------------------------------------------------------

    def _load(self, offset: int) -> int:
        return struct.unpack_from("<Q", self._segment.buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        struct.pack_into("<Q", self._segment.buf, offset, value)

    @property
    def write_cursor(self) -> int:
        """Absolute bytes ever claimed by the producer."""
        return self._load(0)

    @property
    def read_cursor(self) -> int:
        """Absolute bytes ever released by the consumer."""
        return self._load(8)

    def used(self) -> int:
        """Bytes currently claimed and not yet released."""
        return self.write_cursor - self.read_cursor

    # -- producer side -------------------------------------------------

    def try_claim(self, nbytes: int) -> int | None:
        """Claim ``nbytes`` contiguous bytes; absolute offset or ``None``.

        ``None`` means the ring currently lacks contiguous space (or the
        block can never fit) — the caller should fall back to an inline
        payload or wait for the consumer.
        """
        nbytes = int(nbytes)
        padded = nbytes + ((-nbytes) % _ALIGN)
        if padded > self.capacity:
            return None
        write = self.write_cursor
        position = write % self.capacity
        skip = 0
        if position + padded > self.capacity:
            skip = self.capacity - position  # tail padding: never wrap a block
        if (write + skip + padded) - self.read_cursor > self.capacity:
            return None
        start = write + skip
        self._store(0, start + padded)
        return start

    def write(
        self, payload: np.ndarray | bytes, timeout: float = 0.0
    ) -> int | None:
        """Copy ``payload`` into the ring; its absolute offset, or ``None``.

        Spins (1 ms naps) for up to ``timeout`` seconds waiting for the
        consumer to release space.  ``None`` on timeout or oversize.
        """
        if isinstance(payload, np.ndarray):
            data = np.ascontiguousarray(payload).view(np.uint8).reshape(-1).data
        else:
            data = memoryview(payload)
        nbytes = len(data)
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            offset = self.try_claim(nbytes)
            if offset is not None:
                break
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.001)
        position = offset % self.capacity
        self._segment.buf[
            _HEADER_BYTES + position : _HEADER_BYTES + position + nbytes
        ] = data
        return offset

    # -- consumer side -------------------------------------------------

    def view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy view of the block claimed at absolute ``offset``."""
        position = int(offset) % self.capacity
        return self._segment.buf[
            _HEADER_BYTES + position : _HEADER_BYTES + position + int(nbytes)
        ]

    def array(self, offset: int, shape: tuple[int, ...]) -> np.ndarray:
        """Zero-copy float64 array view of the block at ``offset``."""
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        flat = np.frombuffer(self.view(offset, count * 8), dtype=np.float64)
        return flat.reshape(shape)

    def release(self, offset: int, nbytes: int) -> None:
        """Release the block at ``offset`` (must be the oldest live block).

        Tail padding skipped *before* a block is accounted to that block's
        offset, so releasing blocks in claim order keeps the cursors
        consistent without any extra bookkeeping.  Blocks no larger than
        half the capacity can always be claimed once the ring drains, so a
        full ring is always a transient condition.
        """
        nbytes = int(nbytes)
        padded = nbytes + ((-nbytes) % _ALIGN)
        self._store(8, max(int(offset) + padded, self.read_cursor))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Unmap the segment (and unlink it when this side created it)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass
        if self._owner:
            try:
                self._segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
