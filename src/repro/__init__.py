"""In silico synchronization of cellular populations through expression data deconvolution.

A from-scratch Python reproduction of Eisenberg, Ash & Siegal-Gaskins
(DAC 2011): a Monte-Carlo model of asynchronous Caulobacter populations, the
fractional volume-density kernel ``Q(phi, t)``, and a constrained, regularised
deconvolution that recovers synchronous single-cell expression profiles
``f(phi)`` from population-level time series.

Quickstart
----------
>>> import numpy as np
>>> from repro import Deconvolver, KernelBuilder, ftsz_like_profile
>>> times = np.linspace(0.0, 150.0, 16)
>>> kernel = KernelBuilder(num_cells=5000).build(times, rng=0)
>>> truth = ftsz_like_profile()
>>> population = kernel.apply_function(truth)          # forward model
>>> result = Deconvolver(kernel).fit(times, population)  # inverse problem
>>> phases, estimate = result.profile_on_grid()
"""

from repro.cellcycle import (
    CellCycleParameters,
    CellType,
    CellTypeBoundaries,
    InitialCondition,
    KernelBuilder,
    LinearVolumeModel,
    PiecewiseLinearVolumeModel,
    PopulationSimulator,
    SmoothVolumeModel,
    VolumeKernel,
    make_volume_model,
    simulate_type_distribution,
)
from repro.core import (
    Deconvolver,
    DeconvolutionProblem,
    DeconvolutionResult,
    FitSession,
    ForwardModel,
    PositivityConstraint,
    RNAConservationConstraint,
    RateContinuityConstraint,
    SplineBasis,
    default_constraints,
    select_lambda,
)
from repro.data import (
    ExpressionTimeSeries,
    GaussianAdditiveNoise,
    GaussianMagnitudeNoise,
    GaussianProportionalNoise,
    PhaseProfile,
    ftsz_like_profile,
    ftsz_population_dataset,
    judd_reference_distribution,
)
from repro.dynamics import (
    GoodwinOscillator,
    LotkaVolterraModel,
    Repressilator,
    estimate_period,
    extract_phase_profiles,
    tune_to_period,
)
from repro.estimation import FitResult, TimeSeriesObjective, fit_parameters

__version__ = "1.0.0"

__all__ = [
    "CellCycleParameters",
    "CellType",
    "CellTypeBoundaries",
    "InitialCondition",
    "KernelBuilder",
    "LinearVolumeModel",
    "PiecewiseLinearVolumeModel",
    "PopulationSimulator",
    "SmoothVolumeModel",
    "VolumeKernel",
    "make_volume_model",
    "simulate_type_distribution",
    "Deconvolver",
    "DeconvolutionProblem",
    "DeconvolutionResult",
    "FitSession",
    "ForwardModel",
    "PositivityConstraint",
    "RNAConservationConstraint",
    "RateContinuityConstraint",
    "SplineBasis",
    "default_constraints",
    "select_lambda",
    "ExpressionTimeSeries",
    "GaussianAdditiveNoise",
    "GaussianMagnitudeNoise",
    "GaussianProportionalNoise",
    "PhaseProfile",
    "ftsz_like_profile",
    "ftsz_population_dataset",
    "judd_reference_distribution",
    "GoodwinOscillator",
    "LotkaVolterraModel",
    "Repressilator",
    "estimate_period",
    "extract_phase_profiles",
    "tune_to_period",
    "FitResult",
    "TimeSeriesObjective",
    "fit_parameters",
    "__version__",
]
