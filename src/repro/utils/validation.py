"""Argument-validation helpers.

These helpers normalise inputs to NumPy arrays and raise informative
``ValueError`` / ``TypeError`` exceptions with the offending argument name, so
the public API fails early and clearly instead of deep inside a solver.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite scalar.

    Parameters
    ----------
    value:
        Scalar to validate.
    name:
        Argument name used in the error message.
    strict:
        If ``True`` (default) require ``value > 0``; otherwise ``value >= 0``.

    Returns
    -------
    float
        The validated value as a Python float.
    """
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that a scalar lies inside ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    return check_in_range(value, name, 0.0, 1.0)


def ensure_1d(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D float array, rejecting other shapes."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def ensure_2d(values: Sequence[Sequence[float]] | np.ndarray, name: str) -> np.ndarray:
    """Convert ``values`` to a 2-D float array, rejecting other shapes."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be two-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_sorted(values: Sequence[float] | np.ndarray, name: str, *, strict: bool = True) -> np.ndarray:
    """Validate that a 1-D array is sorted in (strictly) increasing order."""
    arr = ensure_1d(values, name)
    diffs = np.diff(arr)
    if strict and np.any(diffs <= 0):
        raise ValueError(f"{name} must be strictly increasing")
    if not strict and np.any(diffs < 0):
        raise ValueError(f"{name} must be non-decreasing")
    return arr
