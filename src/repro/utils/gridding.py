"""Phase and time grid construction helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def phase_grid(num_points: int) -> np.ndarray:
    """Uniform grid on the phase interval ``[0, 1]`` including both endpoints."""
    num_points = int(num_points)
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    return np.linspace(0.0, 1.0, num_points)


def time_grid(t_end: float, num_points: int, *, t_start: float = 0.0) -> np.ndarray:
    """Uniform time grid on ``[t_start, t_end]`` with ``num_points`` samples."""
    check_positive(t_end - t_start, "t_end - t_start")
    num_points = int(num_points)
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    return np.linspace(float(t_start), float(t_end), num_points)


def bin_edges(num_bins: int, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Edges of ``num_bins`` equal-width bins covering ``[low, high]``."""
    num_bins = int(num_bins)
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    if not high > low:
        raise ValueError("high must exceed low")
    return np.linspace(low, high, num_bins + 1)


def bin_centers(edges: np.ndarray) -> np.ndarray:
    """Midpoints of adjacent bin edges."""
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array with at least two entries")
    return 0.5 * (edges[:-1] + edges[1:])
