"""Small shared utilities: argument validation, RNG handling and grids."""

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_sorted,
    ensure_1d,
    ensure_2d,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.gridding import phase_grid, time_grid, bin_edges, bin_centers

__all__ = [
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_sorted",
    "ensure_1d",
    "ensure_2d",
    "as_generator",
    "spawn_generators",
    "phase_grid",
    "time_grid",
    "bin_edges",
    "bin_centers",
]
