"""Random-number-generator helpers.

Every stochastic component of the package accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  These helpers
normalise that convention and provide independent child generators for
parallel / repeated experiments.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed type.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {seed!r} as a random seed")


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own bit stream so that
        # repeated calls advance deterministically.
        children = [np.random.default_rng(seed.integers(0, 2**63 - 1)) for _ in range(count)]
        return children
    base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in base.spawn(count)]
