"""Parameter estimation for single-cell ODE models (the paper's Sec. 5 application).

Differential-equation models of gene regulation describe *single cells*, but
are usually fitted to *population* data.  This package provides the machinery
to quantify the resulting bias and the improvement obtained by fitting to
deconvolved profiles instead: a generic sum-of-squares objective matching a
model's trajectory to target time series, and a Nelder-Mead driver operating
in log-parameter space so rates stay positive.
"""

from repro.estimation.objectives import TimeSeriesObjective, model_time_series
from repro.estimation.fitting import FitResult, fit_parameters

__all__ = [
    "TimeSeriesObjective",
    "model_time_series",
    "FitResult",
    "fit_parameters",
]
