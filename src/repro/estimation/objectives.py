"""Objective functions for fitting ODE-model parameters to expression data."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.dynamics.base import ODEModel
from repro.utils.validation import check_sorted, ensure_1d, ensure_2d

#: A factory mapping a parameter vector to a concrete ODE model instance.
ModelFactory = Callable[[np.ndarray], ODEModel]


def model_time_series(
    model: ODEModel,
    times: np.ndarray,
    species: Sequence[str] | None = None,
    *,
    num_points_per_unit: float = 2.0,
    initial_state: np.ndarray | None = None,
) -> np.ndarray:
    """Simulate ``model`` and sample selected species at ``times``.

    Parameters
    ----------
    model:
        The single-cell model.
    times:
        Output times (minutes), starting at or after zero.
    species:
        Species names to extract; defaults to all species.
    num_points_per_unit:
        Integration resolution (output samples per minute).
    initial_state:
        Starting state; defaults to the model default.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(times), len(species))``.
    """
    times = check_sorted(times, "times", strict=False)
    if times[0] < 0:
        raise ValueError("times must be non-negative")
    horizon = float(times[-1]) if times[-1] > 0 else 1.0
    num_points = max(int(num_points_per_unit * horizon) + 1, 51)
    solution = model.simulate(horizon, num_points=num_points, initial_state=initial_state)
    sampled = solution.interpolate(times)
    names = species if species is not None else model.species_names
    indices = [model.species_index(name) for name in names]
    return sampled[:, indices]


class TimeSeriesObjective:
    """Weighted sum-of-squares misfit between a model and target time series.

    Parameters
    ----------
    factory:
        Maps a parameter vector to an :class:`~repro.dynamics.base.ODEModel`.
    times:
        Target measurement times in minutes.
    targets:
        Target values, shape ``(len(times), num_species)``.
    species:
        Names of the species the target columns correspond to.
    weights:
        Optional per-species weights; defaults to ``1 / max|target|`` per
        column so differently scaled species contribute comparably.
    penalty:
        Value returned when the model cannot be built or simulated for a
        candidate parameter vector (keeps the optimiser away from bad regions).
    """

    def __init__(
        self,
        factory: ModelFactory,
        times: np.ndarray,
        targets: np.ndarray,
        species: Sequence[str],
        *,
        weights: np.ndarray | None = None,
        penalty: float = 1e12,
    ) -> None:
        self.factory = factory
        self.times = check_sorted(times, "times", strict=False)
        self.targets = ensure_2d(targets, "targets")
        if self.targets.shape[0] != self.times.size:
            raise ValueError("targets must have one row per time point")
        self.species = tuple(species)
        if len(self.species) != self.targets.shape[1]:
            raise ValueError("species must name every target column")
        if weights is None:
            scales = np.max(np.abs(self.targets), axis=0)
            scales[scales == 0] = 1.0
            weights = 1.0 / scales
        self.weights = ensure_1d(weights, "weights")
        if self.weights.size != len(self.species):
            raise ValueError("weights must have one entry per species")
        self.penalty = float(penalty)
        self.evaluations = 0

    def __call__(self, parameters: np.ndarray) -> float:
        """Misfit of the model built from ``parameters``."""
        self.evaluations += 1
        try:
            model = self.factory(np.asarray(parameters, dtype=float))
            simulated = model_time_series(model, self.times, self.species)
        except (ValueError, FloatingPointError, OverflowError, RuntimeError):
            return self.penalty
        if not np.all(np.isfinite(simulated)):
            return self.penalty
        residual = (simulated - self.targets) * self.weights[None, :]
        return float(np.sum(residual**2))
