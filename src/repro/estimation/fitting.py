"""Nelder-Mead driver for ODE parameter fitting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.numerics.nelder_mead import minimize_nelder_mead
from repro.utils.validation import ensure_1d


@dataclass
class FitResult:
    """Outcome of a parameter fit.

    Attributes
    ----------
    parameters:
        Fitted parameter vector (in the original, non-log scale).
    objective_value:
        Final objective value.
    converged:
        Whether the optimiser met its tolerances.
    iterations, function_evaluations:
        Optimiser effort.
    relative_errors:
        Per-parameter relative errors against a known truth (empty when no
        truth was supplied).
    """

    parameters: np.ndarray
    objective_value: float
    converged: bool
    iterations: int
    function_evaluations: int
    relative_errors: np.ndarray = field(default_factory=lambda: np.array([]))

    @property
    def mean_relative_error(self) -> float:
        """Mean of the per-parameter relative errors (``nan`` if unknown)."""
        if self.relative_errors.size == 0:
            return float("nan")
        return float(np.mean(self.relative_errors))


def fit_parameters(
    objective: Callable[[np.ndarray], float],
    initial_guess: np.ndarray,
    *,
    log_space: bool = True,
    true_parameters: np.ndarray | None = None,
    initial_step: float = 0.25,
    max_iterations: int = 2000,
) -> FitResult:
    """Minimise ``objective`` over a parameter vector with Nelder-Mead.

    Parameters
    ----------
    objective:
        Callable returning the misfit for a parameter vector.
    initial_guess:
        Starting parameter vector (strictly positive when ``log_space``).
    log_space:
        Optimise over ``log(parameters)`` so rates stay positive; recommended
        for kinetic models.
    true_parameters:
        Optional ground truth used to report per-parameter relative errors.
    initial_step:
        Initial simplex displacement (in log units when ``log_space``).
    max_iterations:
        Nelder-Mead iteration cap.
    """
    initial_guess = ensure_1d(initial_guess, "initial_guess")
    if log_space:
        if np.any(initial_guess <= 0):
            raise ValueError("log-space fitting requires a strictly positive initial guess")

        def wrapped(log_params: np.ndarray) -> float:
            return float(objective(np.exp(log_params)))

        start = np.log(initial_guess)
    else:
        def wrapped(params: np.ndarray) -> float:
            return float(objective(params))

        start = initial_guess

    result = minimize_nelder_mead(
        wrapped, start, initial_step=initial_step, max_iterations=max_iterations
    )
    fitted = np.exp(result.x) if log_space else result.x

    relative_errors = np.array([])
    if true_parameters is not None:
        true_parameters = ensure_1d(true_parameters, "true_parameters")
        if true_parameters.size != fitted.size:
            raise ValueError("true_parameters must match the fitted vector length")
        if np.any(true_parameters == 0):
            raise ValueError("relative errors are undefined for zero true parameters")
        relative_errors = np.abs(fitted - true_parameters) / np.abs(true_parameters)

    return FitResult(
        parameters=fitted,
        objective_value=result.fun,
        converged=result.converged,
        iterations=result.iterations,
        function_evaluations=result.function_evaluations,
        relative_errors=relative_errors,
    )
